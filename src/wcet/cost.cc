#include "src/wcet/cost.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace pmk {

namespace {

constexpr Addr kUnknownLine = static_cast<Addr>(-1);

// Abstract direct-mapped must-cache: per set, the line guaranteed resident.
class MustCache {
 public:
  MustCache(std::uint32_t way_bytes, std::uint32_t line_bytes)
      : line_bytes_(line_bytes), sets_(way_bytes / line_bytes, kUnknownLine) {}

  // Returns true if the access is a guaranteed hit; installs the line.
  bool Access(Addr addr) {
    const Addr line = addr / line_bytes_ * line_bytes_;
    const std::uint32_t s = static_cast<std::uint32_t>((line / line_bytes_) % sets_.size());
    const bool hit = sets_[s] == line;
    sets_[s] = line;
    return hit;
  }

  void JoinWith(const MustCache& other) {
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      if (sets_[i] != other.sets_[i]) {
        sets_[i] = kUnknownLine;
      }
    }
  }

  bool operator==(const MustCache& other) const { return sets_ == other.sets_; }

 private:
  std::uint32_t line_bytes_;
  std::vector<Addr> sets_;
};

struct AbstractState {
  MustCache icache;
  MustCache dcache;
  bool reachable = false;

  AbstractState(std::uint32_t way, std::uint32_t line) : icache(way, line), dcache(way, line) {}

  bool operator==(const AbstractState& o) const {
    return reachable == o.reachable && icache == o.icache && dcache == o.dcache;
  }
};

struct Access {
  Addr line = 0;
  bool instruction = false;
};

// Enumerates the statically-known lines a block touches.
void CollectAccesses(const Program& p, const Block& b, const CostModelOptions& opts,
                     std::vector<Access>& out) {
  const Addr first = b.address / opts.line_bytes;
  const Addr last = (b.address + static_cast<Addr>(b.instr_count) * 4 - 1) / opts.line_bytes;
  for (Addr l = first; l <= last; ++l) {
    out.push_back({l * opts.line_bytes, true});
  }
  for (const StaticAccess& a : b.static_accesses) {
    const Addr addr = p.ResolveStatic(b, a);
    out.push_back({addr / opts.line_bytes * opts.line_bytes, false});
  }
}

bool IsPinned(const CostModelOptions& opts, const Access& a) {
  return a.instruction ? opts.pinned_ilines.count(a.line) != 0
                       : opts.pinned_dlines.count(a.line) != 0;
}

// Fixed (cache-independent) cost of one block execution.
Cycles BaseCost(const Block& b, const CostModelOptions& opts) {
  Cycles cost = b.instr_count + b.raw_cycles;
  // Every data access pays the pipeline's load-result latency; dynamic
  // (statically unknown) addresses additionally miss every time.
  cost += static_cast<Cycles>(b.static_accesses.size()) * opts.load_use_stall;
  cost += static_cast<Cycles>(b.max_dynamic_accesses) *
          (opts.load_use_stall + opts.MissPenalty());
  const bool has_branch = b.is_return || b.callee != kNoFunc || b.succs.size() == 2 ||
                          b.branch == BranchKind::kDirect;
  if (has_branch) {
    cost += opts.branch_cost;
  }
  return cost;
}

}  // namespace

CostResult ComputeNodeCosts(const InlinedGraph& g, const CostModelOptions& opts) {
  const Program& p = g.program();
  const std::vector<NodeId> order = g.QuasiTopoOrder();
  const std::uint32_t num_sets = opts.way_bytes / opts.line_bytes;

  // ---- Must-cache fixpoint ----
  std::vector<AbstractState> in_states(g.nodes().size(),
                                       AbstractState(opts.way_bytes, opts.line_bytes));
  std::vector<AbstractState> out_states(g.nodes().size(),
                                        AbstractState(opts.way_bytes, opts.line_bytes));
  const auto apply = [&](const Block& b, AbstractState& st) {
    std::vector<Access> acc;
    CollectAccesses(p, b, opts, acc);
    for (const Access& a : acc) {
      if (IsPinned(opts, a)) {
        continue;
      }
      (a.instruction ? st.icache : st.dcache).Access(a.line);
    }
  };

  // Run to convergence: stopping early on a still-changing state would leave
  // stale must-information (an UNDER-estimate of misses, i.e. unsound).
  // Convergence is fast in practice (joins only remove information); the cap
  // is a safety net against non-monotone bugs.
  constexpr int kMaxPasses = 1000;
  int pass = 0;
  for (; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (NodeId n : order) {
      AbstractState st(opts.way_bytes, opts.line_bytes);
      bool first = true;
      for (EdgeId eid : g.nodes()[n].in) {
        const InlinedEdge& e = g.edges()[eid];
        const AbstractState* pred = nullptr;
        AbstractState cold(opts.way_bytes, opts.line_bytes);
        if (e.from == kNoNode) {
          cold.reachable = true;  // kernel entry: cold caches
          pred = &cold;
        } else if (out_states[e.from].reachable) {
          pred = &out_states[e.from];
        } else {
          continue;
        }
        if (first) {
          st = *pred;
          first = false;
        } else {
          st.icache.JoinWith(pred->icache);
          st.dcache.JoinWith(pred->dcache);
        }
      }
      if (first) {
        continue;  // unreachable so far
      }
      st.reachable = true;
      if (!(in_states[n] == st)) {
        in_states[n] = st;
        changed = true;
      }
      AbstractState out = st;
      apply(g.BlockOf(n), out);
      if (!(out_states[n] == out)) {
        out_states[n] = out;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  if (pass == kMaxPasses) {
    throw std::logic_error("must-cache analysis failed to converge");
  }

  // ---- Loop membership: containing loops per node, outermost first ----
  std::vector<std::vector<int>> containing(g.nodes().size());
  {
    std::vector<std::size_t> by_size(g.loops().size());
    for (std::size_t i = 0; i < by_size.size(); ++i) {
      by_size[i] = i;
    }
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
      return g.loops()[a].body.size() > g.loops()[b].body.size();
    });
    for (std::size_t li : by_size) {
      for (NodeId n : g.loops()[li].body) {
        containing[n].push_back(static_cast<int>(li));
      }
    }
  }

  // ---- Persistence: per loop, lines whose cache set is touched by exactly
  // one distinct line within the body (so they cannot be evicted while the
  // loop runs) ----
  // Key: (loop, instruction?, set) -> distinct lines seen.
  std::vector<std::map<std::uint32_t, Addr>> iset_line(g.loops().size());
  std::vector<std::map<std::uint32_t, Addr>> dset_line(g.loops().size());
  constexpr Addr kConflict = static_cast<Addr>(-2);
  for (NodeId n = 0; n < g.nodes().size(); ++n) {
    if (containing[n].empty()) {
      continue;
    }
    std::vector<Access> acc;
    CollectAccesses(p, g.BlockOf(n), opts, acc);
    // A node's accesses are registered in EVERY loop containing it, so an
    // inner-loop body also constrains persistence of the outer loop.
    for (int lj : containing[n]) {
      for (const Access& a : acc) {
        if (IsPinned(opts, a)) {
          continue;
        }
        const std::uint32_t set = static_cast<std::uint32_t>((a.line / opts.line_bytes) % num_sets);
        auto& m = (a.instruction ? iset_line : dset_line)[lj];
        auto [it, inserted] = m.emplace(set, a.line);
        if (!inserted && it->second != a.line) {
          it->second = kConflict;
        }
      }
    }
  }
  const auto persistent_in = [&](int li, const Access& a) {
    const std::uint32_t set = static_cast<std::uint32_t>((a.line / opts.line_bytes) % num_sets);
    const auto& m = (a.instruction ? iset_line : dset_line)[li];
    const auto it = m.find(set);
    return it != m.end() && it->second == a.line;
  };
  // The first-miss charge belongs to the OUTERMOST loop in which the line is
  // persistent: re-entering an inner loop does not evict lines the outer
  // loop also preserves.
  const auto persistence_loop = [&](NodeId n, const Access& a) -> int {
    for (int li : containing[n]) {  // outermost first
      if (persistent_in(li, a)) {
        return li;
      }
    }
    return -1;
  };

  // ---- Per-node costs + per-loop first-miss charges ----
  CostResult res;
  res.node_costs.assign(g.nodes().size(), 0);
  res.edge_extras.assign(g.edges().size(), 0);
  std::vector<std::set<Addr>> loop_first_i(g.loops().size());
  std::vector<std::set<Addr>> loop_first_d(g.loops().size());

  for (NodeId n = 0; n < g.nodes().size(); ++n) {
    if (!in_states[n].reachable) {
      continue;
    }
    const Block& b = g.BlockOf(n);
    Cycles cost = BaseCost(b, opts);
    AbstractState st = in_states[n];
    std::vector<Access> acc;
    CollectAccesses(p, b, opts, acc);
    for (const Access& a : acc) {
      if (IsPinned(opts, a)) {
        continue;
      }
      const bool hit = (a.instruction ? st.icache : st.dcache).Access(a.line);
      if (hit) {
        continue;
      }
      const int li = persistence_loop(n, a);
      if (li >= 0) {
        // First-miss: charged once on that loop's entry edges.
        (a.instruction ? loop_first_i : loop_first_d)[li].insert(a.line);
      } else {
        cost += opts.MissPenaltyFor(a.line);
      }
    }
    res.node_costs[n] = cost;
  }

  for (std::size_t li = 0; li < g.loops().size(); ++li) {
    Cycles extra = 0;
    for (Addr line : loop_first_i[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    for (Addr line : loop_first_d[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    if (extra == 0) {
      continue;
    }
    for (EdgeId e : g.loops()[li].entries) {
      res.edge_extras[e] += extra;
    }
  }
  return res;
}

Cycles BlockWorstCaseCost(const Program& p, BlockId id, const CostModelOptions& opts) {
  const Block& b = p.block(id);
  Cycles total = BaseCost(b, opts);
  std::vector<Access> acc;
  CollectAccesses(p, b, opts, acc);
  for (const Access& a : acc) {
    if (!IsPinned(opts, a)) {
      total += opts.MissPenaltyFor(a.line);
    }
  }
  return total;
}

Cycles EvaluateTraceCost(const Program& p, const Trace& trace, const CostModelOptions& opts) {
  AbstractState st(opts.way_bytes, opts.line_bytes);
  Cycles total = 0;
  for (BlockId bid : trace.blocks) {
    const Block& b = p.block(bid);
    total += BaseCost(b, opts);
    std::vector<Access> acc;
    CollectAccesses(p, b, opts, acc);
    for (const Access& a : acc) {
      if (IsPinned(opts, a)) {
        continue;
      }
      if (!(a.instruction ? st.icache : st.dcache).Access(a.line)) {
        total += opts.MissPenaltyFor(a.line);
      }
    }
  }
  return total;
}

}  // namespace pmk
