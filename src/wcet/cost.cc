#include "src/wcet/cost.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

#include "src/wcet/refmode.h"

namespace pmk {

namespace {

constexpr Addr kUnknownLine = static_cast<Addr>(-1);

// Abstract direct-mapped must-cache: per set, the line guaranteed resident.
class MustCache {
 public:
  MustCache(std::uint32_t way_bytes, std::uint32_t line_bytes)
      : line_bytes_(line_bytes), sets_(way_bytes / line_bytes, kUnknownLine) {}

  // Returns true if the access is a guaranteed hit; installs the line.
  bool Access(Addr addr) {
    const Addr line = addr / line_bytes_ * line_bytes_;
    const std::uint32_t s = static_cast<std::uint32_t>((line / line_bytes_) % sets_.size());
    const bool hit = sets_[s] == line;
    sets_[s] = line;
    return hit;
  }

  void JoinWith(const MustCache& other) {
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      if (sets_[i] != other.sets_[i]) {
        sets_[i] = kUnknownLine;
      }
    }
  }

  bool operator==(const MustCache& other) const { return sets_ == other.sets_; }

 private:
  std::uint32_t line_bytes_;
  std::vector<Addr> sets_;
};

struct AbstractState {
  MustCache icache;
  MustCache dcache;
  bool reachable = false;

  AbstractState(std::uint32_t way, std::uint32_t line) : icache(way, line), dcache(way, line) {}

  bool operator==(const AbstractState& o) const {
    return reachable == o.reachable && icache == o.icache && dcache == o.dcache;
  }
};

// Enumerates the statically-known lines a block touches.
void CollectAccesses(const Program& p, const Block& b, const CostModelOptions& opts,
                     std::vector<LineAccess>& out) {
  const Addr first = b.address / opts.line_bytes;
  const Addr last = (b.address + static_cast<Addr>(b.instr_count) * 4 - 1) / opts.line_bytes;
  for (Addr l = first; l <= last; ++l) {
    out.push_back({l * opts.line_bytes, true});
  }
  for (const StaticAccess& a : b.static_accesses) {
    const Addr addr = p.ResolveStatic(b, a);
    out.push_back({addr / opts.line_bytes * opts.line_bytes, false});
  }
}

bool IsPinned(const CostModelOptions& opts, const LineAccess& a) {
  return a.instruction ? opts.pinned_ilines.count(a.line) != 0
                       : opts.pinned_dlines.count(a.line) != 0;
}

// Fixed (cache-independent) cost of one block execution.
Cycles BaseCost(const Block& b, const CostModelOptions& opts) {
  Cycles cost = b.instr_count + b.raw_cycles;
  // Every data access pays the pipeline's load-result latency; dynamic
  // (statically unknown) addresses additionally miss every time.
  cost += static_cast<Cycles>(b.static_accesses.size()) * opts.load_use_stall;
  cost += static_cast<Cycles>(b.max_dynamic_accesses) *
          (opts.load_use_stall + opts.MissPenalty());
  const bool has_branch = b.is_return || b.callee != kNoFunc || b.succs.size() == 2 ||
                          b.branch == BranchKind::kDirect;
  if (has_branch) {
    cost += opts.branch_cost;
  }
  return cost;
}

// Reference twin of ComputeNodeCosts: the seed implementation's cost profile,
// kept verbatim for ReferenceMode() benchmarking and equivalence tests —
// whole-graph passes iterated to convergence (every node recomputed every
// pass) and per-node access collection with no shared block cache. The
// transfer function and join are identical to the worklist version, so both
// reach the same unique fixpoint and produce equal CostResults.
CostResult ComputeNodeCostsReference(const InlinedGraph& g, const CostModelOptions& opts) {
  const Program& p = g.program();
  const std::vector<NodeId> order = g.QuasiTopoOrder();
  const std::uint32_t num_sets = opts.way_bytes / opts.line_bytes;

  // ---- Must-cache fixpoint ----
  std::vector<AbstractState> in_states(g.nodes().size(),
                                       AbstractState(opts.way_bytes, opts.line_bytes));
  std::vector<AbstractState> out_states(g.nodes().size(),
                                        AbstractState(opts.way_bytes, opts.line_bytes));
  const auto apply = [&](const Block& b, AbstractState& st) {
    std::vector<LineAccess> acc;
    CollectAccesses(p, b, opts, acc);
    for (const LineAccess& a : acc) {
      if (IsPinned(opts, a)) {
        continue;
      }
      (a.instruction ? st.icache : st.dcache).Access(a.line);
    }
  };

  // Run to convergence: stopping early on a still-changing state would leave
  // stale must-information (an UNDER-estimate of misses, i.e. unsound).
  constexpr int kMaxPasses = 1000;
  int pass = 0;
  for (; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (NodeId n : order) {
      AbstractState st(opts.way_bytes, opts.line_bytes);
      bool first = true;
      for (EdgeId eid : g.nodes()[n].in) {
        const InlinedEdge& e = g.edges()[eid];
        const AbstractState* pred = nullptr;
        AbstractState cold(opts.way_bytes, opts.line_bytes);
        if (e.from == kNoNode) {
          cold.reachable = true;  // kernel entry: cold caches
          pred = &cold;
        } else if (out_states[e.from].reachable) {
          pred = &out_states[e.from];
        } else {
          continue;
        }
        if (first) {
          st = *pred;
          first = false;
        } else {
          st.icache.JoinWith(pred->icache);
          st.dcache.JoinWith(pred->dcache);
        }
      }
      if (first) {
        continue;  // unreachable so far
      }
      st.reachable = true;
      if (!(in_states[n] == st)) {
        in_states[n] = st;
        changed = true;
      }
      AbstractState out = st;
      apply(g.BlockOf(n), out);
      if (!(out_states[n] == out)) {
        out_states[n] = out;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  if (pass == kMaxPasses) {
    throw std::logic_error("must-cache analysis failed to converge");
  }

  // ---- Loop membership: containing loops per node, outermost first ----
  std::vector<std::vector<int>> containing(g.nodes().size());
  {
    std::vector<std::size_t> by_size(g.loops().size());
    for (std::size_t i = 0; i < by_size.size(); ++i) {
      by_size[i] = i;
    }
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
      return g.loops()[a].body.size() > g.loops()[b].body.size();
    });
    for (std::size_t li : by_size) {
      for (NodeId n : g.loops()[li].body) {
        containing[n].push_back(static_cast<int>(li));
      }
    }
  }

  // ---- Persistence ----
  std::vector<std::map<std::uint32_t, Addr>> iset_line(g.loops().size());
  std::vector<std::map<std::uint32_t, Addr>> dset_line(g.loops().size());
  constexpr Addr kConflict = static_cast<Addr>(-2);
  for (NodeId n = 0; n < g.nodes().size(); ++n) {
    if (containing[n].empty()) {
      continue;
    }
    std::vector<LineAccess> acc;
    CollectAccesses(p, g.BlockOf(n), opts, acc);
    for (int lj : containing[n]) {
      for (const LineAccess& a : acc) {
        if (IsPinned(opts, a)) {
          continue;
        }
        const std::uint32_t set = static_cast<std::uint32_t>((a.line / opts.line_bytes) % num_sets);
        auto& m = (a.instruction ? iset_line : dset_line)[lj];
        auto [it, inserted] = m.emplace(set, a.line);
        if (!inserted && it->second != a.line) {
          it->second = kConflict;
        }
      }
    }
  }
  const auto persistent_in = [&](int li, const LineAccess& a) {
    const std::uint32_t set = static_cast<std::uint32_t>((a.line / opts.line_bytes) % num_sets);
    const auto& m = (a.instruction ? iset_line : dset_line)[li];
    const auto it = m.find(set);
    return it != m.end() && it->second == a.line;
  };
  const auto persistence_loop = [&](NodeId n, const LineAccess& a) -> int {
    for (int li : containing[n]) {  // outermost first
      if (persistent_in(li, a)) {
        return li;
      }
    }
    return -1;
  };

  // ---- Per-node costs + per-loop first-miss charges ----
  CostResult res;
  res.node_costs.assign(g.nodes().size(), 0);
  res.edge_extras.assign(g.edges().size(), 0);
  std::vector<std::set<Addr>> loop_first_i(g.loops().size());
  std::vector<std::set<Addr>> loop_first_d(g.loops().size());

  for (NodeId n = 0; n < g.nodes().size(); ++n) {
    if (!in_states[n].reachable) {
      continue;
    }
    const Block& b = g.BlockOf(n);
    Cycles cost = BaseCost(b, opts);
    AbstractState st = in_states[n];
    std::vector<LineAccess> acc;
    CollectAccesses(p, b, opts, acc);
    for (const LineAccess& a : acc) {
      if (IsPinned(opts, a)) {
        continue;
      }
      const bool hit = (a.instruction ? st.icache : st.dcache).Access(a.line);
      if (hit) {
        continue;
      }
      const int li = persistence_loop(n, a);
      if (li >= 0) {
        (a.instruction ? loop_first_i : loop_first_d)[li].insert(a.line);
      } else {
        cost += opts.MissPenaltyFor(a.line);
      }
    }
    res.node_costs[n] = cost;
  }

  for (std::size_t li = 0; li < g.loops().size(); ++li) {
    Cycles extra = 0;
    for (Addr line : loop_first_i[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    for (Addr line : loop_first_d[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    if (extra == 0) {
      continue;
    }
    for (EdgeId e : g.loops()[li].entries) {
      res.edge_extras[e] += extra;
    }
  }
  return res;
}

}  // namespace

CostModelCache::CostModelCache(const Program& program, const CostModelOptions& opts)
    : program_(&program), opts_(opts) {
  const std::size_t n = program.num_blocks();
  start_.assign(n + 1, 0);
  base_.assign(n, 0);
  worst_.assign(n, 0);
  std::vector<LineAccess> acc;
  for (BlockId id = 0; id < n; ++id) {
    const Block& b = program.block(id);
    acc.clear();
    CollectAccesses(program, b, opts_, acc);
    Cycles worst = BaseCost(b, opts_);
    base_[id] = worst;
    for (const LineAccess& a : acc) {
      if (IsPinned(opts_, a)) {
        continue;  // pinned lines always hit: drop them from every pass
      }
      pool_.push_back(a);
      worst += opts_.MissPenaltyFor(a.line);
    }
    worst_[id] = worst;
    start_[id + 1] = static_cast<std::uint32_t>(pool_.size());
  }
}

CostResult ComputeNodeCosts(const InlinedGraph& g, const CostModelCache& cache) {
  const CostModelOptions& opts = cache.options();
  const std::vector<NodeId>& order = g.QuasiTopoOrder();
  const std::uint32_t num_sets = opts.way_bytes / opts.line_bytes;
  const std::size_t num_nodes = g.nodes().size();

  // ---- Must-cache fixpoint ----
  std::vector<AbstractState> in_states(num_nodes, AbstractState(opts.way_bytes, opts.line_bytes));
  std::vector<AbstractState> out_states(num_nodes, AbstractState(opts.way_bytes, opts.line_bytes));
  const auto apply = [&](BlockId bid, AbstractState& st) {
    for (const LineAccess* a = cache.accesses_begin(bid); a != cache.accesses_end(bid); ++a) {
      (a->instruction ? st.icache : st.dcache).Access(a->line);
    }
  };

  // Worklist-driven chaotic iteration in quasi-topological sweeps: only nodes
  // whose predecessors' out-states changed are re-evaluated. The transfer
  // function and join are monotone (must-information is only ever removed),
  // so this reaches the same unique fixpoint as whole-graph iteration to
  // convergence; stopping with dirty nodes outstanding would leave stale
  // must-information (an UNDER-estimate of misses, i.e. unsound). The cap is
  // a safety net against non-monotone bugs.
  std::vector<char> dirty(num_nodes, 1);
  const std::size_t kMaxRecomputes = static_cast<std::size_t>(1000) * std::max<std::size_t>(num_nodes, 1);
  std::size_t recomputes = 0;
  bool any_dirty = true;
  while (any_dirty) {
    any_dirty = false;
    for (NodeId n : order) {
      if (!dirty[n]) {
        continue;
      }
      dirty[n] = 0;
      if (++recomputes > kMaxRecomputes) {
        throw std::logic_error("must-cache analysis failed to converge");
      }
      AbstractState st(opts.way_bytes, opts.line_bytes);
      bool first = true;
      for (EdgeId eid : g.nodes()[n].in) {
        const InlinedEdge& e = g.edges()[eid];
        const AbstractState* pred = nullptr;
        AbstractState cold(opts.way_bytes, opts.line_bytes);
        if (e.from == kNoNode) {
          cold.reachable = true;  // kernel entry: cold caches
          pred = &cold;
        } else if (out_states[e.from].reachable) {
          pred = &out_states[e.from];
        } else {
          continue;
        }
        if (first) {
          st = *pred;
          first = false;
        } else {
          st.icache.JoinWith(pred->icache);
          st.dcache.JoinWith(pred->dcache);
        }
      }
      if (first) {
        continue;  // unreachable so far
      }
      st.reachable = true;
      if (!(in_states[n] == st)) {
        in_states[n] = st;
      }
      AbstractState out = st;
      apply(g.nodes()[n].block, out);
      if (!(out_states[n] == out)) {
        out_states[n] = std::move(out);
        for (EdgeId eid : g.nodes()[n].out) {
          const InlinedEdge& e = g.edges()[eid];
          if (e.to != kNoNode) {
            dirty[e.to] = 1;
            any_dirty = true;
          }
        }
      }
    }
  }

  // ---- Loop membership: containing loops per node, outermost first ----
  std::vector<std::vector<int>> containing(num_nodes);
  {
    std::vector<std::size_t> by_size(g.loops().size());
    for (std::size_t i = 0; i < by_size.size(); ++i) {
      by_size[i] = i;
    }
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
      return g.loops()[a].body.size() > g.loops()[b].body.size();
    });
    for (std::size_t li : by_size) {
      for (NodeId n : g.loops()[li].body) {
        containing[n].push_back(static_cast<int>(li));
      }
    }
  }

  // ---- Persistence: per loop, lines whose cache set is touched by exactly
  // one distinct line within the body (so they cannot be evicted while the
  // loop runs) ----
  // Key: (loop, instruction?, set) -> distinct lines seen.
  std::vector<std::map<std::uint32_t, Addr>> iset_line(g.loops().size());
  std::vector<std::map<std::uint32_t, Addr>> dset_line(g.loops().size());
  constexpr Addr kConflict = static_cast<Addr>(-2);
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (containing[n].empty()) {
      continue;
    }
    const BlockId bid = g.nodes()[n].block;
    // A node's accesses are registered in EVERY loop containing it, so an
    // inner-loop body also constrains persistence of the outer loop.
    for (int lj : containing[n]) {
      for (const LineAccess* a = cache.accesses_begin(bid); a != cache.accesses_end(bid); ++a) {
        const std::uint32_t set = static_cast<std::uint32_t>((a->line / opts.line_bytes) % num_sets);
        auto& m = (a->instruction ? iset_line : dset_line)[lj];
        auto [it, inserted] = m.emplace(set, a->line);
        if (!inserted && it->second != a->line) {
          it->second = kConflict;
        }
      }
    }
  }
  const auto persistent_in = [&](int li, const LineAccess& a) {
    const std::uint32_t set = static_cast<std::uint32_t>((a.line / opts.line_bytes) % num_sets);
    const auto& m = (a.instruction ? iset_line : dset_line)[li];
    const auto it = m.find(set);
    return it != m.end() && it->second == a.line;
  };
  // The first-miss charge belongs to the OUTERMOST loop in which the line is
  // persistent: re-entering an inner loop does not evict lines the outer
  // loop also preserves.
  const auto persistence_loop = [&](NodeId n, const LineAccess& a) -> int {
    for (int li : containing[n]) {  // outermost first
      if (persistent_in(li, a)) {
        return li;
      }
    }
    return -1;
  };

  // ---- Per-node costs + per-loop first-miss charges ----
  CostResult res;
  res.node_costs.assign(num_nodes, 0);
  res.edge_extras.assign(g.edges().size(), 0);
  std::vector<std::set<Addr>> loop_first_i(g.loops().size());
  std::vector<std::set<Addr>> loop_first_d(g.loops().size());

  for (NodeId n = 0; n < num_nodes; ++n) {
    if (!in_states[n].reachable) {
      continue;
    }
    const BlockId bid = g.nodes()[n].block;
    Cycles cost = cache.base_cost(bid);
    AbstractState st = in_states[n];
    for (const LineAccess* a = cache.accesses_begin(bid); a != cache.accesses_end(bid); ++a) {
      const bool hit = (a->instruction ? st.icache : st.dcache).Access(a->line);
      if (hit) {
        continue;
      }
      const int li = persistence_loop(n, *a);
      if (li >= 0) {
        // First-miss: charged once on that loop's entry edges.
        (a->instruction ? loop_first_i : loop_first_d)[li].insert(a->line);
      } else {
        cost += opts.MissPenaltyFor(a->line);
      }
    }
    res.node_costs[n] = cost;
  }

  for (std::size_t li = 0; li < g.loops().size(); ++li) {
    Cycles extra = 0;
    for (Addr line : loop_first_i[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    for (Addr line : loop_first_d[li]) {
      extra += opts.MissPenaltyFor(line);
    }
    if (extra == 0) {
      continue;
    }
    for (EdgeId e : g.loops()[li].entries) {
      res.edge_extras[e] += extra;
    }
  }
  return res;
}

CostResult ComputeNodeCosts(const InlinedGraph& g, const CostModelOptions& opts) {
  if (wcet::ReferenceMode()) {
    return ComputeNodeCostsReference(g, opts);
  }
  return ComputeNodeCosts(g, CostModelCache(g.program(), opts));
}

Cycles BlockWorstCaseCost(const Program& p, BlockId id, const CostModelOptions& opts) {
  const Block& b = p.block(id);
  Cycles total = BaseCost(b, opts);
  std::vector<LineAccess> acc;
  CollectAccesses(p, b, opts, acc);
  for (const LineAccess& a : acc) {
    if (!IsPinned(opts, a)) {
      total += opts.MissPenaltyFor(a.line);
    }
  }
  return total;
}

Cycles EvaluateTraceCost(const CostModelCache& cache, const Trace& trace) {
  const CostModelOptions& opts = cache.options();
  AbstractState st(opts.way_bytes, opts.line_bytes);
  Cycles total = 0;
  for (BlockId bid : trace.blocks) {
    total += cache.base_cost(bid);
    for (const LineAccess* a = cache.accesses_begin(bid); a != cache.accesses_end(bid); ++a) {
      if (!(a->instruction ? st.icache : st.dcache).Access(a->line)) {
        total += opts.MissPenaltyFor(a->line);
      }
    }
  }
  return total;
}

Cycles EvaluateTraceCost(const Program& p, const Trace& trace, const CostModelOptions& opts) {
  if (wcet::ReferenceMode()) {
    // Reference twin: the seed evaluator's per-block access collection, with
    // the pin filter applied on every block visit instead of once up front.
    AbstractState st(opts.way_bytes, opts.line_bytes);
    Cycles total = 0;
    for (BlockId bid : trace.blocks) {
      const Block& b = p.block(bid);
      total += BaseCost(b, opts);
      std::vector<LineAccess> acc;
      CollectAccesses(p, b, opts, acc);
      for (const LineAccess& a : acc) {
        if (IsPinned(opts, a)) {
          continue;
        }
        if (!(a.instruction ? st.icache : st.dcache).Access(a.line)) {
          total += opts.MissPenaltyFor(a.line);
        }
      }
    }
    return total;
  }
  return EvaluateTraceCost(CostModelCache(p, opts), trace);
}

}  // namespace pmk
