// Conservative per-node cost model (paper Section 5.1).
//
// The caches are analyzed as direct-mapped caches of one way's size — "a
// pessimistic but sound approximation", since the most recently accessed line
// in a set is guaranteed resident under round-robin replacement. A must-cache
// abstract analysis over the inlined graph classifies fetches and
// statically-addressed data accesses; a persistence analysis classifies lines
// that cannot be evicted within a loop as first-miss and charges them on the
// loop's entry edges (Chronos-style cache analysis). Dynamically-addressed
// accesses are conservatively charged as misses on every execution. The L2
// is not modelled beyond its effect on the memory latency (Chronos's address
// analysis is substituted by the kernel IR's declared access discipline; see
// DESIGN.md).

#ifndef SRC_WCET_COST_H_
#define SRC_WCET_COST_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/hw/cycles.h"
#include "src/kir/trace.h"
#include "src/wcet/cfg.h"

namespace pmk {

// Sorted flat vector of way-locked line addresses. Keeps the std::set-shaped
// construction API (insert one / insert range, count) that analysis.cc and
// the tests use, but membership probes in the cost hot loop are a binary
// search over contiguous storage instead of pointer-chasing a red-black tree.
class PinnedLineSet {
 public:
  PinnedLineSet() = default;

  void insert(Addr line) {
    const auto it = std::lower_bound(lines_.begin(), lines_.end(), line);
    if (it == lines_.end() || *it != line) {
      lines_.insert(it, line);
    }
  }
  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) {
      insert(*first);
    }
  }
  std::size_t count(Addr line) const {
    return std::binary_search(lines_.begin(), lines_.end(), line) ? 1u : 0u;
  }
  bool empty() const { return lines_.empty(); }
  std::size_t size() const { return lines_.size(); }
  const std::vector<Addr>& lines() const { return lines_; }

 private:
  std::vector<Addr> lines_;
};

struct CostModelOptions {
  bool l2_enabled = false;
  Cycles mem_latency_l2_off = 60;
  Cycles mem_latency_l2_on = 96;
  Cycles l2_hit_latency = 26;
  Cycles load_use_stall = 2;  // ARM1136 load result latency (pipeline model)
  Cycles branch_cost = 5;     // branch predictor disabled: constant 5 cycles
  std::uint32_t line_bytes = 32;
  std::uint32_t way_bytes = 4 * 1024;  // 16 KiB 4-way: one way = 4 KiB
  PinnedLineSet pinned_ilines;         // way-locked lines: always hit
  PinnedLineSet pinned_dlines;

  // "Lock the entire kernel into the L2" (paper Sections 4, 6.4, 8): every
  // statically-addressed access within [l2_pinned_lo, l2_pinned_hi) misses
  // no further than the L2. Requires l2_enabled.
  bool l2_kernel_pinned = false;
  Addr l2_pinned_lo = 0;
  Addr l2_pinned_hi = 0;

  Cycles MissPenalty() const { return l2_enabled ? mem_latency_l2_on : mem_latency_l2_off; }
  Cycles MissPenaltyFor(Addr addr) const {
    if (l2_kernel_pinned && addr >= l2_pinned_lo && addr < l2_pinned_hi) {
      return l2_hit_latency;
    }
    return MissPenalty();
  }
};

// One statically-known line touch of a block.
struct LineAccess {
  Addr line = 0;
  bool instruction = false;
};

// Per-block cost-model state derived once from (program, options) and shared
// by every analysis pass: the statically-known line accesses of each block
// with way-locked (pinned) lines already filtered out, the cache-independent
// base cost, and the any-state worst-case cost. Immutable after
// construction, so it is safe to share across the job pool's threads.
class CostModelCache {
 public:
  CostModelCache(const Program& program, const CostModelOptions& opts);

  const Program& program() const { return *program_; }
  const CostModelOptions& options() const { return opts_; }

  const LineAccess* accesses_begin(BlockId id) const { return pool_.data() + start_[id]; }
  const LineAccess* accesses_end(BlockId id) const { return pool_.data() + start_[id + 1]; }
  Cycles base_cost(BlockId id) const { return base_[id]; }
  // BlockWorstCaseCost, precomputed.
  Cycles worst_case(BlockId id) const { return worst_[id]; }

 private:
  const Program* program_;
  CostModelOptions opts_;
  std::vector<std::uint32_t> start_;  // num_blocks + 1, CSR-style offsets
  std::vector<LineAccess> pool_;
  std::vector<Cycles> base_;
  std::vector<Cycles> worst_;
};

struct CostResult {
  std::vector<Cycles> node_costs;   // per inlined node, per execution
  std::vector<Cycles> edge_extras;  // per inlined edge: loop first-miss cost
};

// Computes worst-case execution costs: per-node recurring cost plus, for
// loop-persistent lines, a one-time cost on the loop's entry edges.
// Loop bounds must already be attached (ComputeLoopBounds) so innermost-loop
// membership is known.
CostResult ComputeNodeCosts(const InlinedGraph& graph, const CostModelCache& cache);
CostResult ComputeNodeCosts(const InlinedGraph& graph, const CostModelOptions& opts);

// Conservative cost of one concrete executed path (block sequence), using
// the same cost model without joins. Used to force the analysis onto a
// measured path (paper Sections 5.4 and 6.2).
Cycles EvaluateTraceCost(const CostModelCache& cache, const Trace& trace);
Cycles EvaluateTraceCost(const Program& program, const Trace& trace,
                         const CostModelOptions& opts);

// Unconditional per-execution ceiling for one block: every non-pinned access
// is assumed to miss. Unlike must-cache node costs (which depend on the
// abstract cache state reaching the node), this bound holds for ANY concrete
// cache state, so profiled per-execution block costs can be checked against
// it directly. Sound for the default (branch predictor disabled) machine
// configuration, where a branch always charges opts.branch_cost.
Cycles BlockWorstCaseCost(const Program& program, BlockId id, const CostModelOptions& opts);

}  // namespace pmk

#endif  // SRC_WCET_COST_H_
