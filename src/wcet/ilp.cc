#include "src/wcet/ilp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pmk {

namespace {

constexpr double kEps = 1e-7;
constexpr std::uint64_t kMaxPivots = 200'000;

// Dense two-phase simplex over a row-major tableau.
class Simplex {
 public:
  explicit Simplex(const LinearProgram& lp) : lp_(lp) {}

  SolveResult Solve() {
    Build();
    // Phase 1: minimize the sum of artificial variables.
    if (num_artificial_ > 0) {
      SetPhase1Objective();
      const SolveStatus st = Iterate();
      if (st != SolveStatus::kOptimal) {
        return {st == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : st, 0, {}};
      }
      // Phase 1 maximizes -(sum of artificials); feasible iff that optimum
      // is (numerically) zero.
      if (Objective() < -kEps * (1 + static_cast<double>(m_))) {
        return {SolveStatus::kInfeasible, 0, {}};
      }
      DriveOutArtificials();
    }
    // Phase 2: maximize the real objective.
    SetPhase2Objective();
    const SolveStatus st = Iterate();
    if (st != SolveStatus::kOptimal) {
      return {st, 0, {}};
    }
    SolveResult res;
    res.status = SolveStatus::kOptimal;
    res.objective = Objective();
    res.x.assign(lp_.num_vars, 0.0);
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < lp_.num_vars) {
        res.x[basis_[r]] = Rhs(r);
      }
    }
    return res;
  }

 private:
  double& At(std::uint32_t r, std::uint32_t c) { return tab_[static_cast<std::size_t>(r) * stride_ + c]; }
  double Rhs(std::uint32_t r) { return At(r, n_ - 1); }
  double Objective() { return At(m_, n_ - 1); }

  void Build() {
    m_ = static_cast<std::uint32_t>(lp_.rows.size());
    // Columns: structural vars, then one slack/surplus per <= / >= row, then
    // artificials, then RHS. Normalize rhs >= 0 first.
    std::vector<int> slack_col(m_, -1);
    std::vector<int> art_col(m_, -1);
    std::vector<int> sign(m_, 1);
    std::uint32_t extra = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = lp_.rows[r];
      const bool neg = row.rhs < 0;
      sign[r] = neg ? -1 : 1;
      if (row.type == LinearProgram::RowType::kLe) {
        // <= with rhs>=0: slack basic. Negated (>=): surplus + artificial.
        slack_col[r] = static_cast<int>(lp_.num_vars + extra++);
        if (neg) {
          art_col[r] = -2;  // assigned below
        }
      } else {
        art_col[r] = -2;
      }
    }
    std::uint32_t art_base = lp_.num_vars + extra;
    num_artificial_ = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (art_col[r] == -2) {
        art_col[r] = static_cast<int>(art_base + num_artificial_++);
      }
    }
    n_ = art_base + num_artificial_ + 1;  // + RHS column
    stride_ = n_;
    tab_.assign(static_cast<std::size_t>(m_ + 1) * stride_, 0.0);
    basis_.assign(m_, 0);

    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = lp_.rows[r];
      const double s = sign[r];
      for (std::size_t k = 0; k < row.idx.size(); ++k) {
        At(r, row.idx[k]) += s * row.val[k];
      }
      At(r, n_ - 1) = s * row.rhs;
      if (slack_col[r] >= 0) {
        // Slack sign: original <= keeps +1; negated <= (now >=) gets -1.
        At(r, static_cast<std::uint32_t>(slack_col[r])) = (s > 0) ? 1.0 : -1.0;
      }
      if (art_col[r] >= 0) {
        At(r, static_cast<std::uint32_t>(art_col[r])) = 1.0;
        basis_[r] = static_cast<std::uint32_t>(art_col[r]);
      } else {
        basis_[r] = static_cast<std::uint32_t>(slack_col[r]);
      }
    }
    art_base_ = art_base;
  }

  void SetPhase1Objective() {
    // Minimize sum of artificials == maximize -(sum): objective row holds
    // reduced costs for maximization with Objective() = -value.
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(m_, c) = 0.0;
    }
    for (std::uint32_t a = 0; a < num_artificial_; ++a) {
      At(m_, art_base_ + a) = 1.0;
    }
    // Price out basic artificials.
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] >= art_base_) {
        for (std::uint32_t c = 0; c < n_; ++c) {
          At(m_, c) -= At(r, c);
        }
      }
    }
  }

  void SetPhase2Objective() {
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(m_, c) = 0.0;
    }
    for (std::uint32_t v = 0; v < lp_.num_vars; ++v) {
      At(m_, v) = -lp_.objective[v];  // maximize
    }
    // Forbid artificial re-entry by leaving their reduced costs at 0 but
    // never selecting them as entering columns (handled in Iterate).
    // Price out the current basis.
    for (std::uint32_t r = 0; r < m_; ++r) {
      const double coef = At(m_, basis_[r]);
      if (std::abs(coef) > kEps) {
        for (std::uint32_t c = 0; c < n_; ++c) {
          At(m_, c) -= coef * At(r, c);
        }
      }
    }
    phase2_ = true;
  }

  void DriveOutArtificials() {
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < art_base_) {
        continue;
      }
      // Pivot on any non-artificial column with a nonzero entry.
      for (std::uint32_t c = 0; c < art_base_; ++c) {
        if (std::abs(At(r, c)) > 1e-6) {
          Pivot(r, c);
          break;
        }
      }
      // If none exists the row is redundant (all-zero); leave it.
    }
  }

  SolveStatus Iterate() {
    std::uint64_t pivots = 0;
    for (;;) {
      if (++pivots > kMaxPivots) {
        return SolveStatus::kIterationLimit;
      }
      // Entering column: most negative reduced cost (Dantzig); switch to
      // Bland's rule late to guarantee termination.
      const std::uint32_t limit = phase2_ ? art_base_ : n_ - 1;
      std::int64_t enter = -1;
      if (pivots < kMaxPivots / 2) {
        double best = -kEps;
        for (std::uint32_t c = 0; c < limit; ++c) {
          if (At(m_, c) < best) {
            best = At(m_, c);
            enter = c;
          }
        }
      } else {
        for (std::uint32_t c = 0; c < limit; ++c) {
          if (At(m_, c) < -kEps) {
            enter = c;
            break;
          }
        }
      }
      if (enter < 0) {
        return SolveStatus::kOptimal;
      }
      // Leaving row: ratio test (Bland tie-break on basis index).
      std::int64_t leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::uint32_t r = 0; r < m_; ++r) {
        const double a = At(r, static_cast<std::uint32_t>(enter));
        if (a > kEps) {
          const double ratio = Rhs(r) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leave >= 0 && basis_[r] < basis_[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) {
        return SolveStatus::kUnbounded;
      }
      Pivot(static_cast<std::uint32_t>(leave), static_cast<std::uint32_t>(enter));
    }
  }

  void Pivot(std::uint32_t pr, std::uint32_t pc) {
    const double pv = At(pr, pc);
    assert(std::abs(pv) > 1e-12);
    const double inv = 1.0 / pv;
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(pr, c) *= inv;
    }
    At(pr, pc) = 1.0;
    for (std::uint32_t r = 0; r <= m_; ++r) {
      if (r == pr) {
        continue;
      }
      const double f = At(r, pc);
      if (std::abs(f) < 1e-12) {
        continue;
      }
      for (std::uint32_t c = 0; c < n_; ++c) {
        At(r, c) -= f * At(pr, c);
      }
      At(r, pc) = 0.0;
    }
    basis_[pr] = pc;
  }

  const LinearProgram& lp_;
  std::vector<double> tab_;
  std::vector<std::uint32_t> basis_;
  std::uint32_t m_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t stride_ = 0;
  std::uint32_t art_base_ = 0;
  std::uint32_t num_artificial_ = 0;
  bool phase2_ = false;
};

}  // namespace

SolveResult SolveLp(const LinearProgram& lp) { return Simplex(lp).Solve(); }

SolveResult SolveIlp(const LinearProgram& lp, std::uint32_t max_nodes) {
  // Branch and bound, depth-first, best-incumbent pruning.
  struct Node {
    std::vector<LinearProgram::Row> extra;
  };
  std::vector<Node> stack{Node{}};
  SolveResult best;
  best.status = SolveStatus::kInfeasible;
  double incumbent = -std::numeric_limits<double>::infinity();
  std::uint32_t explored = 0;
  bool hit_limit = false;

  while (!stack.empty()) {
    if (++explored > max_nodes) {
      hit_limit = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();

    LinearProgram sub = lp;
    for (const auto& row : node.extra) {
      sub.AddRow(row);
    }
    const SolveResult rel = SolveLp(sub);
    if (rel.status == SolveStatus::kUnbounded) {
      return rel;  // the ILP itself is unbounded (missing loop bound)
    }
    if (rel.status != SolveStatus::kOptimal || rel.objective <= incumbent + 1e-6) {
      continue;
    }
    // Find a fractional variable.
    std::int64_t frac = -1;
    for (std::uint32_t v = 0; v < lp.num_vars; ++v) {
      if (std::abs(rel.x[v] - std::round(rel.x[v])) > 1e-5) {
        frac = v;
        break;
      }
    }
    if (frac < 0) {
      incumbent = rel.objective;
      best = rel;
      for (double& xv : best.x) {
        xv = std::round(xv);
      }
      continue;
    }
    const double v = rel.x[frac];
    Node down = node;
    {
      LinearProgram::Row r;
      r.idx = {static_cast<std::uint32_t>(frac)};
      r.val = {1.0};
      r.rhs = std::floor(v);
      r.type = LinearProgram::RowType::kLe;
      down.extra.push_back(std::move(r));
    }
    Node up = node;
    {
      // x >= ceil(v)  <=>  -x <= -ceil(v)
      LinearProgram::Row r;
      r.idx = {static_cast<std::uint32_t>(frac)};
      r.val = {-1.0};
      r.rhs = -std::ceil(v);
      r.type = LinearProgram::RowType::kLe;
      up.extra.push_back(std::move(r));
    }
    stack.push_back(std::move(up));
    stack.push_back(std::move(down));
  }

  if (best.status != SolveStatus::kOptimal && hit_limit) {
    best.status = SolveStatus::kIterationLimit;
  }
  return best;
}

}  // namespace pmk
