#include "src/wcet/ilp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/wcet/refmode.h"

namespace pmk {

// Position-independent basis export token ({structural var | slack of row r |
// artificial of row r}). Defined at namespace scope (not in the anonymous
// namespace) because IlpWarmStart::Impl stores a vector of them.
struct BasisToken {
  enum class Kind : std::uint8_t { kStruct, kSlack, kArt };
  Kind kind = Kind::kStruct;
  std::uint32_t id = 0;  // var index for kStruct, row index otherwise
};

struct IlpWarmStart::Impl {
  std::vector<BasisToken> tokens;
};

IlpWarmStart::IlpWarmStart() : impl_(std::make_unique<Impl>()) {}
IlpWarmStart::~IlpWarmStart() = default;
IlpWarmStart::IlpWarmStart(IlpWarmStart&&) noexcept = default;
IlpWarmStart& IlpWarmStart::operator=(IlpWarmStart&&) noexcept = default;
bool IlpWarmStart::valid() const { return impl_ && !impl_->tokens.empty(); }
void IlpWarmStart::Reset() {
  if (impl_) {
    impl_->tokens.clear();
  }
}

void IlpWarmStart::RemapRows(const std::vector<std::int32_t>& old_to_new,
                             std::uint32_t new_count) {
  if (!valid()) {
    return;
  }
  std::vector<BasisToken>& tokens = impl_->tokens;
  const std::uint32_t old_m = static_cast<std::uint32_t>(tokens.size());
  if (old_to_new.size() != old_m) {
    // The stored basis does not match the instance the mapping was built
    // against (e.g. it was exported under a different option set).
    Reset();
    return;
  }
  std::vector<BasisToken> out(new_count, BasisToken{BasisToken::Kind::kSlack, 0});
  std::vector<char> filled(new_count, 0);
  for (std::uint32_t p = 0; p < old_m; ++p) {
    const std::int32_t np = old_to_new[p];
    if (np < 0) {
      continue;  // this position's row was removed; drop its token
    }
    if (static_cast<std::uint32_t>(np) >= new_count || filled[np]) {
      Reset();  // malformed mapping (out of range or not injective)
      return;
    }
    BasisToken t = tokens[p];
    if (t.kind != BasisToken::Kind::kStruct) {
      if (t.id >= old_m) {
        Reset();
        return;
      }
      const std::int32_t nid = old_to_new[t.id];
      if (nid < 0) {
        // The referenced row was removed; fall back to the slack of the row
        // now occupying this position. A duplicate against another token is
        // caught by ImportBasis and falls through to a cold solve.
        t = BasisToken{BasisToken::Kind::kSlack, static_cast<std::uint32_t>(np)};
      } else {
        t.id = static_cast<std::uint32_t>(nid);
      }
    }
    out[static_cast<std::uint32_t>(np)] = t;
    filled[np] = 1;
  }
  // Rows with no surviving position (freshly inserted) enter with their own
  // slack or artificial basic: a singleton column, block-triangular against
  // the surviving basis, so refactorisation stays nonsingular.
  for (std::uint32_t r = 0; r < new_count; ++r) {
    if (!filled[r]) {
      out[r] = BasisToken{BasisToken::Kind::kSlack, r};
    }
  }
  tokens = std::move(out);
}

namespace {

constexpr double kEps = 1e-7;
constexpr std::uint64_t kMaxPivots = 200'000;

// Solver telemetry: totals across every LP/ILP solve in the process.
obs::Counter& LpSolveCounter() {
  static obs::Counter c("wcet.simplex.solves");
  return c;
}
obs::Counter& PivotCounter() {
  static obs::Counter c("wcet.simplex.pivots");
  return c;
}
obs::Counter& RefactorCounter() {
  static obs::Counter c("wcet.simplex.refactorisations");
  return c;
}
obs::Counter& BbNodeCounter() {
  static obs::Counter c("wcet.bb.nodes");
  return c;
}
obs::Counter& BbWarmStartCounter() {
  static obs::Counter c("wcet.bb.warm_starts");
  return c;
}
// Incremental-engine telemetry: how often SolveIlpWarm actually restarted
// from a stored basis vs. fell through to a cold root solve.
obs::Counter& IncWarmSolveCounter() {
  static obs::Counter c("wcet.inc.simplex.warm");
  return c;
}
obs::Counter& IncColdSolveCounter() {
  static obs::Counter c("wcet.inc.simplex.cold");
  return c;
}

// ---------------------------------------------------------------------------
// Dense two-phase simplex over a row-major tableau.
//
// This is the reference twin (pmk::wcet::SetReferenceMode): the seed solver,
// kept verbatim apart from the pivot counter, so equivalence tests and the
// bench can re-solve every instance both ways and assert identical results.
class Simplex {
 public:
  explicit Simplex(const LinearProgram& lp) : lp_(lp) {}

  SolveResult Solve() {
    Build();
    // Phase 1: minimize the sum of artificial variables.
    if (num_artificial_ > 0) {
      SetPhase1Objective();
      const SolveStatus st = Iterate();
      if (st != SolveStatus::kOptimal) {
        return {st == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : st, 0, {}, pivots_total_};
      }
      // Phase 1 maximizes -(sum of artificials); feasible iff that optimum
      // is (numerically) zero.
      if (Objective() < -kEps * (1 + static_cast<double>(m_))) {
        return {SolveStatus::kInfeasible, 0, {}, pivots_total_};
      }
      DriveOutArtificials();
    }
    // Phase 2: maximize the real objective.
    SetPhase2Objective();
    const SolveStatus st = Iterate();
    if (st != SolveStatus::kOptimal) {
      return {st, 0, {}, pivots_total_};
    }
    SolveResult res;
    res.status = SolveStatus::kOptimal;
    res.objective = Objective();
    res.x.assign(lp_.num_vars, 0.0);
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < lp_.num_vars) {
        res.x[basis_[r]] = Rhs(r);
      }
    }
    res.pivots = pivots_total_;
    return res;
  }

 private:
  double& At(std::uint32_t r, std::uint32_t c) { return tab_[static_cast<std::size_t>(r) * stride_ + c]; }
  double Rhs(std::uint32_t r) { return At(r, n_ - 1); }
  double Objective() { return At(m_, n_ - 1); }

  void Build() {
    m_ = static_cast<std::uint32_t>(lp_.rows.size());
    // Columns: structural vars, then one slack/surplus per <= / >= row, then
    // artificials, then RHS. Normalize rhs >= 0 first.
    std::vector<int> slack_col(m_, -1);
    std::vector<int> art_col(m_, -1);
    std::vector<int> sign(m_, 1);
    std::uint32_t extra = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = lp_.rows[r];
      const bool neg = row.rhs < 0;
      sign[r] = neg ? -1 : 1;
      if (row.type == LinearProgram::RowType::kLe) {
        // <= with rhs>=0: slack basic. Negated (>=): surplus + artificial.
        slack_col[r] = static_cast<int>(lp_.num_vars + extra++);
        if (neg) {
          art_col[r] = -2;  // assigned below
        }
      } else {
        art_col[r] = -2;
      }
    }
    std::uint32_t art_base = lp_.num_vars + extra;
    num_artificial_ = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (art_col[r] == -2) {
        art_col[r] = static_cast<int>(art_base + num_artificial_++);
      }
    }
    n_ = art_base + num_artificial_ + 1;  // + RHS column
    stride_ = n_;
    tab_.assign(static_cast<std::size_t>(m_ + 1) * stride_, 0.0);
    basis_.assign(m_, 0);

    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = lp_.rows[r];
      const double s = sign[r];
      for (std::size_t k = 0; k < row.idx.size(); ++k) {
        At(r, row.idx[k]) += s * row.val[k];
      }
      At(r, n_ - 1) = s * row.rhs;
      if (slack_col[r] >= 0) {
        // Slack sign: original <= keeps +1; negated <= (now >=) gets -1.
        At(r, static_cast<std::uint32_t>(slack_col[r])) = (s > 0) ? 1.0 : -1.0;
      }
      if (art_col[r] >= 0) {
        At(r, static_cast<std::uint32_t>(art_col[r])) = 1.0;
        basis_[r] = static_cast<std::uint32_t>(art_col[r]);
      } else {
        basis_[r] = static_cast<std::uint32_t>(slack_col[r]);
      }
    }
    art_base_ = art_base;
  }

  void SetPhase1Objective() {
    // Minimize sum of artificials == maximize -(sum): objective row holds
    // reduced costs for maximization with Objective() = -value.
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(m_, c) = 0.0;
    }
    for (std::uint32_t a = 0; a < num_artificial_; ++a) {
      At(m_, art_base_ + a) = 1.0;
    }
    // Price out basic artificials.
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] >= art_base_) {
        for (std::uint32_t c = 0; c < n_; ++c) {
          At(m_, c) -= At(r, c);
        }
      }
    }
  }

  void SetPhase2Objective() {
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(m_, c) = 0.0;
    }
    for (std::uint32_t v = 0; v < lp_.num_vars; ++v) {
      At(m_, v) = -lp_.objective[v];  // maximize
    }
    // Forbid artificial re-entry by leaving their reduced costs at 0 but
    // never selecting them as entering columns (handled in Iterate).
    // Price out the current basis.
    for (std::uint32_t r = 0; r < m_; ++r) {
      const double coef = At(m_, basis_[r]);
      if (std::abs(coef) > kEps) {
        for (std::uint32_t c = 0; c < n_; ++c) {
          At(m_, c) -= coef * At(r, c);
        }
      }
    }
    phase2_ = true;
  }

  void DriveOutArtificials() {
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < art_base_) {
        continue;
      }
      // Pivot on any non-artificial column with a nonzero entry.
      for (std::uint32_t c = 0; c < art_base_; ++c) {
        if (std::abs(At(r, c)) > 1e-6) {
          Pivot(r, c);
          break;
        }
      }
      // If none exists the row is redundant (all-zero); leave it.
    }
  }

  SolveStatus Iterate() {
    std::uint64_t pivots = 0;
    for (;;) {
      if (++pivots > kMaxPivots) {
        pivots_total_ += pivots;
        return SolveStatus::kIterationLimit;
      }
      // Entering column: most negative reduced cost (Dantzig); switch to
      // Bland's rule late to guarantee termination.
      const std::uint32_t limit = phase2_ ? art_base_ : n_ - 1;
      std::int64_t enter = -1;
      if (pivots < kMaxPivots / 2) {
        double best = -kEps;
        for (std::uint32_t c = 0; c < limit; ++c) {
          if (At(m_, c) < best) {
            best = At(m_, c);
            enter = c;
          }
        }
      } else {
        for (std::uint32_t c = 0; c < limit; ++c) {
          if (At(m_, c) < -kEps) {
            enter = c;
            break;
          }
        }
      }
      if (enter < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kOptimal;
      }
      // Leaving row: ratio test (Bland tie-break on basis index).
      std::int64_t leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::uint32_t r = 0; r < m_; ++r) {
        const double a = At(r, static_cast<std::uint32_t>(enter));
        if (a > kEps) {
          const double ratio = Rhs(r) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leave >= 0 && basis_[r] < basis_[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kUnbounded;
      }
      Pivot(static_cast<std::uint32_t>(leave), static_cast<std::uint32_t>(enter));
    }
  }

  void Pivot(std::uint32_t pr, std::uint32_t pc) {
    const double pv = At(pr, pc);
    assert(std::abs(pv) > 1e-12);
    const double inv = 1.0 / pv;
    for (std::uint32_t c = 0; c < n_; ++c) {
      At(pr, c) *= inv;
    }
    At(pr, pc) = 1.0;
    for (std::uint32_t r = 0; r <= m_; ++r) {
      if (r == pr) {
        continue;
      }
      const double f = At(r, pc);
      if (std::abs(f) < 1e-12) {
        continue;
      }
      for (std::uint32_t c = 0; c < n_; ++c) {
        At(r, c) -= f * At(pr, c);
      }
      At(r, pc) = 0.0;
    }
    basis_[pr] = pc;
  }

  const LinearProgram& lp_;
  std::vector<double> tab_;
  std::vector<std::uint32_t> basis_;
  std::uint32_t m_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t stride_ = 0;
  std::uint32_t art_base_ = 0;
  std::uint32_t num_artificial_ = 0;
  std::uint64_t pivots_total_ = 0;
  bool phase2_ = false;
};

// ---------------------------------------------------------------------------
// Sparse revised simplex.
//
// Same column layout, rhs normalization, pivot rules, tolerances, phase
// structure and status mapping as the dense tableau above, so both paths walk
// the same vertex sequence (fp ties aside); only the linear algebra differs.
// The constraint matrix is stored once in CSR (pricing sweeps) and CSC
// (FTRAN of entering columns); the basis inverse is a product-form eta file
// refreshed by periodic refactorisation: a greedy sparse Gaussian elimination
// that processes basic columns in ascending-nnz order with partial pivoting.
// Refactorisation may permute which basis *position* holds which basic
// variable; that is harmless because every rule that touches positions
// (ratio-test tie-break, pricing, extraction) keys off the basic variable id,
// never the position index.
//
// Branch-and-bound children are solved warm: the parent's optimal basis is
// exported as position-independent tokens ({structural var | slack of row r |
// artificial of row r}), re-imported against the child's column numbering
// with the new bound row's slack appended (block-triangular, hence
// nonsingular), and primal feasibility is restored by a bounded dual-simplex
// loop. Any import/refactorisation/numerical trouble falls back
// deterministically to a cold two-phase solve.

class RevisedSimplex {
 public:
  // Solves lp with |extra| rows appended (without materialising the copy).
  RevisedSimplex(const LinearProgram& lp, const std::vector<LinearProgram::Row>* extra)
      : lp_(lp), extra_(extra) {
    Build();
  }
  explicit RevisedSimplex(const LinearProgram& lp) : RevisedSimplex(lp, nullptr) {}

  SolveResult Solve() {
    if (num_artificial_ > 0) {
      SetPhase(1);
      const SolveStatus st = Iterate();
      if (st != SolveStatus::kOptimal) {
        return Fail(st == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : st);
      }
      if (PhaseObjective() < -kEps * (1 + static_cast<double>(m_))) {
        return Fail(SolveStatus::kInfeasible);
      }
      DriveOutArtificials();
    }
    SetPhase(2);
    const SolveStatus st = Iterate();
    if (st != SolveStatus::kOptimal) {
      return Fail(st);
    }
    return Extract();
  }

  // Warm start from a parent basis; positions beyond |warm| are filled with
  // the slacks of the trailing (newly appended) rows.
  SolveResult SolveWarm(const std::vector<BasisToken>& warm) {
    if (!ImportBasis(warm)) {
      ResetBasis();
      return Solve();
    }
    SetPhase(2);
    bool need_cold = false;
    const SolveStatus dual = DualIterate(need_cold);
    if (need_cold) {
      ResetBasis();
      return Solve();
    }
    if (dual == SolveStatus::kInfeasible) {
      return Fail(SolveStatus::kInfeasible);
    }
    if (dual != SolveStatus::kOptimal) {
      return Fail(dual);
    }
    // Primal clean-up: usually zero pivots, but restores optimality if the
    // imported basis was not dual feasible to machine precision.
    const SolveStatus st = Iterate();
    if (st != SolveStatus::kOptimal) {
      return Fail(st);
    }
    // A basic artificial that ended positive means the repaired point is not
    // feasible for the original rows (phase 2 never prices artificials, so
    // neither loop above is obliged to remove one). Rare — the import guard
    // rejects positive artificials up front — but if repair drove one
    // positive, discard the warm path entirely.
    for (std::uint32_t p = 0; p < m_; ++p) {
      if (basis_[p] >= art_base_ && beta_[p] > kEps) {
        ResetBasis();
        return Solve();
      }
    }
    return Extract();
  }

  std::vector<BasisToken> ExportBasis() const {
    std::vector<BasisToken> out(m_);
    for (std::uint32_t p = 0; p < m_; ++p) {
      const std::uint32_t col = basis_[p];
      if (col < nvars_) {
        out[p] = {BasisToken::Kind::kStruct, col};
      } else if (col < art_base_) {
        out[p] = {BasisToken::Kind::kSlack, static_cast<std::uint32_t>(home_row_[col])};
      } else {
        out[p] = {BasisToken::Kind::kArt, static_cast<std::uint32_t>(home_row_[col])};
      }
    }
    return out;
  }

 private:
  const LinearProgram::Row& RowAt(std::uint32_t r) const {
    const std::uint32_t base = static_cast<std::uint32_t>(lp_.rows.size());
    return r < base ? lp_.rows[r] : (*extra_)[r - base];
  }

  void Build() {
    const std::uint32_t base = static_cast<std::uint32_t>(lp_.rows.size());
    m_ = base + static_cast<std::uint32_t>(extra_ ? extra_->size() : 0);
    nvars_ = lp_.num_vars;
    slack_col_.assign(m_, -1);
    art_col_.assign(m_, -1);
    sign_.assign(m_, 1);
    std::uint32_t extra_cols = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = RowAt(r);
      const bool neg = row.rhs < 0;
      sign_[r] = neg ? -1 : 1;
      if (row.type == LinearProgram::RowType::kLe) {
        slack_col_[r] = static_cast<int>(nvars_ + extra_cols++);
        if (neg) {
          art_col_[r] = -2;
        }
      } else {
        art_col_[r] = -2;
      }
    }
    art_base_ = nvars_ + extra_cols;
    num_artificial_ = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (art_col_[r] == -2) {
        art_col_[r] = static_cast<int>(art_base_ + num_artificial_++);
      }
    }
    ncols_ = art_base_ + num_artificial_;
    home_row_.assign(ncols_, -1);

    // CSR with duplicate accumulation (the dense build sums repeated column
    // indices into one tableau cell; mirror that exactly).
    row_ptr_.assign(m_ + 1, 0);
    row_col_.clear();
    row_val_.clear();
    b_.assign(m_, 0.0);
    std::vector<double> scatter(ncols_, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::uint32_t r = 0; r < m_; ++r) {
      const LinearProgram::Row& row = RowAt(r);
      const double s = sign_[r];
      touched.clear();
      for (std::size_t k = 0; k < row.idx.size(); ++k) {
        const std::uint32_t c = row.idx[k];
        if (scatter[c] == 0.0) {
          touched.push_back(c);
        }
        scatter[c] += s * row.val[k];
      }
      if (slack_col_[r] >= 0) {
        const std::uint32_t c = static_cast<std::uint32_t>(slack_col_[r]);
        home_row_[c] = static_cast<int>(r);
        scatter[c] = (s > 0) ? 1.0 : -1.0;
        touched.push_back(c);
      }
      if (art_col_[r] >= 0) {
        const std::uint32_t c = static_cast<std::uint32_t>(art_col_[r]);
        home_row_[c] = static_cast<int>(r);
        scatter[c] = 1.0;
        touched.push_back(c);
      }
      std::sort(touched.begin(), touched.end());
      for (const std::uint32_t c : touched) {
        if (scatter[c] != 0.0) {
          row_col_.push_back(c);
          row_val_.push_back(scatter[c]);
        }
        scatter[c] = 0.0;
      }
      row_ptr_[r + 1] = static_cast<std::uint32_t>(row_col_.size());
      b_[r] = s * row.rhs;
    }

    // CSC transpose.
    col_ptr_.assign(ncols_ + 1, 0);
    for (const std::uint32_t c : row_col_) {
      ++col_ptr_[c + 1];
    }
    for (std::uint32_t c = 0; c < ncols_; ++c) {
      col_ptr_[c + 1] += col_ptr_[c];
    }
    col_row_.resize(row_col_.size());
    col_val_.resize(row_col_.size());
    std::vector<std::uint32_t> fill(col_ptr_.begin(), col_ptr_.end() - 1);
    for (std::uint32_t r = 0; r < m_; ++r) {
      for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const std::uint32_t c = row_col_[k];
        col_row_[fill[c]] = r;
        col_val_[fill[c]] = row_val_[k];
        ++fill[c];
      }
    }
    nnz_ = static_cast<std::uint64_t>(row_col_.size());

    y_.assign(m_, 0.0);
    w_.assign(m_, 0.0);
    rc_.assign(ncols_, 0.0);
    alpha_.assign(ncols_, 0.0);
    c_.assign(ncols_, 0.0);
    ResetBasis();
  }

  void ResetBasis() {
    // Initial basis: artificial where present, else the (+1) slack; B0 = I.
    basis_.assign(m_, 0);
    in_basis_.assign(ncols_, 0);
    for (std::uint32_t r = 0; r < m_; ++r) {
      const int col = art_col_[r] >= 0 ? art_col_[r] : slack_col_[r];
      basis_[r] = static_cast<std::uint32_t>(col);
      in_basis_[static_cast<std::uint32_t>(col)] = 1;
    }
    ClearEtas();
    pivots_since_factor_ = 0;
    beta_ = b_;
  }

  void ClearEtas() {
    eta_r_.clear();
    eta_pivot_.clear();
    eta_row_.clear();
    eta_val_.clear();
    eta_ptr_.assign(1, 0);
  }

  std::uint64_t EtaNnz() const { return eta_row_.size() + eta_r_.size(); }

  void SetPhase(int phase) {
    std::fill(c_.begin(), c_.end(), 0.0);
    if (phase == 1) {
      for (std::uint32_t a = 0; a < num_artificial_; ++a) {
        c_[art_base_ + a] = -1.0;  // maximize -(sum of artificials)
      }
      limit_ = ncols_;
    } else {
      for (std::uint32_t v = 0; v < nvars_; ++v) {
        c_[v] = lp_.objective[v];
      }
      limit_ = art_base_;  // artificials never re-enter in phase 2
    }
  }

  double PhaseObjective() const {
    double obj = 0.0;
    for (std::uint32_t p = 0; p < m_; ++p) {
      obj += c_[basis_[p]] * beta_[p];
    }
    return obj;
  }

  // The eta file is a flat pool (struct-of-arrays): eta k pivots row
  // eta_r_[k] with pivot value eta_pivot_[k]; its off-row entries live in
  // eta_row_/eta_val_ over [eta_ptr_[k], eta_ptr_[k+1]). Flat storage keeps
  // the FTRAN/BTRAN walks on contiguous memory and spares one heap
  // allocation per eta on the pivot path.
  void ApplyEta(std::size_t k, std::vector<double>& x) const {
    const std::uint32_t r = eta_r_[k];
    const double t = x[r] / eta_pivot_[k];
    if (t != 0.0) {
      for (std::uint32_t i = eta_ptr_[k]; i < eta_ptr_[k + 1]; ++i) {
        x[eta_row_[i]] -= eta_val_[i] * t;
      }
    }
    x[r] = t;
  }

  // w = B^-1 A_col (dense output, sparse input).
  void FtranColumn(std::uint32_t col, std::vector<double>& w) const {
    std::fill(w.begin(), w.end(), 0.0);
    for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
      w[col_row_[k]] = col_val_[k];
    }
    for (std::size_t k = 0; k < eta_r_.size(); ++k) {
      ApplyEta(k, w);
    }
  }

  // y s.t. y = (B^-1)^T y_in; y is modified in place.
  void Btran(std::vector<double>& y) const {
    for (std::size_t k = eta_r_.size(); k-- > 0;) {
      double s = y[eta_r_[k]];
      for (std::uint32_t i = eta_ptr_[k]; i < eta_ptr_[k + 1]; ++i) {
        s -= eta_val_[i] * y[eta_row_[i]];
      }
      y[eta_r_[k]] = s / eta_pivot_[k];
    }
  }

  // y = (B^-1)^T c_B for the active phase costs.
  void ComputeDuals(std::vector<double>& y) const {
    for (std::uint32_t p = 0; p < m_; ++p) {
      y[p] = c_[basis_[p]];
    }
    Btran(y);
  }

  // rc[j] = y . A_j - c_j for all j < limit_, via a CSR row sweep.
  void PriceAll(const std::vector<double>& y, std::vector<double>& rc) const {
    for (std::uint32_t c = 0; c < limit_; ++c) {
      rc[c] = -c_[c];
    }
    for (std::uint32_t r = 0; r < m_; ++r) {
      const double yr = y[r];
      if (yr == 0.0) {
        continue;
      }
      for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const std::uint32_t c = row_col_[k];
        if (c < limit_) {
          rc[c] += yr * row_val_[k];
        }
      }
    }
  }

  void PivotStep(std::uint32_t p, std::uint32_t enter) {
    eta_r_.push_back(p);
    eta_pivot_.push_back(w_[p]);
    for (std::uint32_t i = 0; i < m_; ++i) {
      if (i != p && w_[i] != 0.0) {
        eta_row_.push_back(i);
        eta_val_.push_back(w_[i]);
      }
    }
    eta_ptr_.push_back(static_cast<std::uint32_t>(eta_row_.size()));
    in_basis_[basis_[p]] = 0;
    basis_[p] = enter;
    in_basis_[enter] = 1;
    ApplyEta(eta_r_.size() - 1, beta_);
    if (++pivots_since_factor_ >= kRefactorEvery || EtaNnz() > 2 * nnz_ + 16 * m_) {
      if (TryRefactorize()) {
        RefactorCounter().Inc();
        pivots_since_factor_ = 0;
      } else {
        // Keep appending etas; reset the counter so we do not retry every
        // pivot against a basis that is refusing to factorise.
        pivots_since_factor_ = 0;
      }
    }
  }

  // Rebuilds the eta file for the current basis from scratch. A symbolic
  // singleton-peeling pass first discovers a pivot order that makes the
  // basis near-triangular: assigning a row singleton is fill-free (every
  // other active column is structurally zero in that row), and assigning a
  // column singleton bounds fill to the column's entries in already-pivoted
  // rows. Positions the peel cannot reach (the "bump") are ordered
  // sparsest-first and numerically partial-pivoted over whatever rows
  // remain. The numeric pass builds each eta through a scatter workspace
  // that visits only the rows the column actually touches, emitting off-row
  // entries in ascending row order so the floating-point sums match a dense
  // 0..m-1 sweep. Returns false (state untouched) if the basis looks
  // singular.
  bool TryRefactorize() {
    // ---- Symbolic pass: row adjacency of the basis matrix ----
    std::vector<std::uint32_t> radj_ptr(m_ + 1, 0);
    for (std::uint32_t p = 0; p < m_; ++p) {
      const std::uint32_t col = basis_[p];
      for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
        ++radj_ptr[col_row_[k] + 1];
      }
    }
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (radj_ptr[r + 1] == 0) {
        return false;  // structurally empty row: singular
      }
      radj_ptr[r + 1] += radj_ptr[r];
    }
    std::vector<std::uint32_t> radj(radj_ptr[m_]);
    {
      std::vector<std::uint32_t> fill(radj_ptr.begin(), radj_ptr.end() - 1);
      for (std::uint32_t p = 0; p < m_; ++p) {
        const std::uint32_t col = basis_[p];
        for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
          radj[fill[col_row_[k]]++] = p;
        }
      }
    }
    std::vector<std::uint32_t> row_cnt(m_), col_cnt(m_);
    for (std::uint32_t r = 0; r < m_; ++r) {
      row_cnt[r] = radj_ptr[r + 1] - radj_ptr[r];
    }
    for (std::uint32_t p = 0; p < m_; ++p) {
      const std::uint32_t col = basis_[p];
      col_cnt[p] = col_ptr_[col + 1] - col_ptr_[col];
    }

    std::vector<char> row_done(m_, 0), col_done(m_, 0);
    std::vector<std::uint32_t> order;
    order.reserve(m_);
    std::vector<std::int64_t> chosen_row(m_, -1);
    // Stale-tolerant FIFO queues: entries are re-checked against the live
    // counts when popped, so stale pushes are simply skipped.
    std::vector<std::uint32_t> row_q, col_q;
    std::size_t row_head = 0, col_head = 0;
    for (std::uint32_t r = 0; r < m_; ++r) {
      if (row_cnt[r] == 1) {
        row_q.push_back(r);
      }
    }
    for (std::uint32_t p = 0; p < m_; ++p) {
      if (col_cnt[p] == 1) {
        col_q.push_back(p);
      }
    }
    const auto assign = [&](std::uint32_t p, std::uint32_t r) {
      col_done[p] = 1;
      row_done[r] = 1;
      chosen_row[p] = r;
      order.push_back(p);
      for (std::uint32_t k = radj_ptr[r]; k < radj_ptr[r + 1]; ++k) {
        const std::uint32_t q = radj[k];
        if (!col_done[q] && --col_cnt[q] == 1) {
          col_q.push_back(q);
        }
      }
      const std::uint32_t col = basis_[p];
      for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
        const std::uint32_t rr = col_row_[k];
        if (!row_done[rr] && --row_cnt[rr] == 1) {
          row_q.push_back(rr);
        }
      }
    };
    while (order.size() < m_) {
      if (row_head < row_q.size()) {
        const std::uint32_t r = row_q[row_head++];
        if (row_done[r] || row_cnt[r] != 1) {
          continue;
        }
        for (std::uint32_t k = radj_ptr[r]; k < radj_ptr[r + 1]; ++k) {
          if (!col_done[radj[k]]) {
            assign(radj[k], r);
            break;
          }
        }
        continue;
      }
      if (col_head < col_q.size()) {
        const std::uint32_t p = col_q[col_head++];
        if (col_done[p] || col_cnt[p] != 1) {
          continue;
        }
        const std::uint32_t col = basis_[p];
        for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
          if (!row_done[col_row_[k]]) {
            assign(p, col_row_[k]);
            break;
          }
        }
        continue;
      }
      break;  // no singletons left: the rest is the bump
    }
    {
      std::vector<std::uint32_t> bump;
      for (std::uint32_t p = 0; p < m_; ++p) {
        if (!col_done[p]) {
          bump.push_back(p);
        }
      }
      std::stable_sort(bump.begin(), bump.end(), [&](std::uint32_t a, std::uint32_t b) {
        return col_cnt[a] < col_cnt[b];
      });
      order.insert(order.end(), bump.begin(), bump.end());
    }

    // ---- Numeric pass ----
    // Each column is transformed by the etas already emitted, but only the
    // reachable ones: a min-heap keyed on eta index pops candidates in
    // creation order, seeded from the column's structural rows and extended
    // by the fill an applied eta introduces (Gilbert-Peierls reachability).
    // An eta whose pivot row only became nonzero via a LATER eta is skipped
    // (k <= last): in sequential order it saw a zero and never fired, so the
    // result is bit-identical to walking the whole eta list.
    scratch_r_.clear();
    scratch_pivot_.clear();
    scratch_row_.clear();
    scratch_val_.clear();
    scratch_ptr_.assign(1, 0);
    std::vector<std::uint32_t> new_basis(m_, 0);
    std::vector<std::int64_t> eta_of_row(m_, -1);
    std::vector<double>& w = wrk_w_;
    std::vector<char>& mask = wrk_mask_;
    std::vector<std::uint32_t>& touched = wrk_touched_;
    std::vector<std::uint32_t>& heap = wrk_heap_;
    w.assign(m_, 0.0);
    mask.assign(m_, 0);
    touched.clear();
    touched.reserve(m_);
    const auto clear_workspace = [&] {
      for (const std::uint32_t i : touched) {
        w[i] = 0.0;
        mask[i] = 0;
      }
    };
    const auto touch = [&](std::uint32_t r) {
      if (!mask[r]) {
        mask[r] = 1;
        touched.push_back(r);
        if (eta_of_row[r] >= 0) {
          heap.push_back(static_cast<std::uint32_t>(eta_of_row[r]));
          std::push_heap(heap.begin(), heap.end(), std::greater<>());
        }
      }
    };
    for (const std::uint32_t p : order) {
      const std::uint32_t col = basis_[p];
      touched.clear();
      heap.clear();
      for (std::uint32_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
        const std::uint32_t r = col_row_[k];
        w[r] = col_val_[k];
        touch(r);
      }
      std::int64_t last = -1;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>());
        const std::uint32_t k = heap.back();
        heap.pop_back();
        if (static_cast<std::int64_t>(k) <= last) {
          continue;  // duplicate, or fired out of order: sequentially a no-op
        }
        last = static_cast<std::int64_t>(k);
        const std::uint32_t er = scratch_r_[k];
        const double t = w[er] / scratch_pivot_[k];
        if (t == 0.0) {
          continue;
        }
        for (std::uint32_t i = scratch_ptr_[k]; i < scratch_ptr_[k + 1]; ++i) {
          touch(scratch_row_[i]);
          w[scratch_row_[i]] -= scratch_val_[i] * t;
        }
        w[er] = t;
      }
      std::sort(touched.begin(), touched.end());
      std::int64_t pr = chosen_row[p];
      if (pr < 0) {
        double best = 1e-9;
        for (const std::uint32_t r : touched) {
          if (!row_done[r] && std::abs(w[r]) > best) {
            best = std::abs(w[r]);
            pr = static_cast<std::int64_t>(r);
          }
        }
        if (pr < 0) {
          clear_workspace();
          return false;
        }
        row_done[pr] = 1;
      } else if (std::abs(w[pr]) <= 1e-9) {
        clear_workspace();
        return false;  // symbolic choice collapsed numerically
      }
      const std::uint32_t er = static_cast<std::uint32_t>(pr);
      const double pivot = w[er];
      const std::size_t off_start = scratch_row_.size();
      for (const std::uint32_t i : touched) {
        if (i != er && w[i] != 0.0) {
          scratch_row_.push_back(i);
          scratch_val_.push_back(w[i]);
        }
      }
      new_basis[er] = col;
      clear_workspace();
      if (scratch_row_.size() == off_start && pivot == 1.0) {
        continue;  // exact identity (typical slack pivot): no-op in every
                   // FTRAN/BTRAN application, so don't store it at all
      }
      eta_of_row[er] = static_cast<std::int64_t>(scratch_r_.size());
      scratch_r_.push_back(er);
      scratch_pivot_.push_back(pivot);
      scratch_ptr_.push_back(static_cast<std::uint32_t>(scratch_row_.size()));
    }
    eta_r_.swap(scratch_r_);
    eta_pivot_.swap(scratch_pivot_);
    eta_ptr_.swap(scratch_ptr_);
    eta_row_.swap(scratch_row_);
    eta_val_.swap(scratch_val_);
    basis_ = std::move(new_basis);
    beta_ = b_;
    for (std::size_t k = 0; k < eta_r_.size(); ++k) {
      ApplyEta(k, beta_);
    }
    return true;
  }

  bool ImportBasis(const std::vector<BasisToken>& warm) {
    if (warm.size() > m_) {
      return false;
    }
    std::vector<std::uint32_t> cols;
    cols.reserve(m_);
    for (const BasisToken& t : warm) {
      std::int64_t col = -1;
      switch (t.kind) {
        case BasisToken::Kind::kStruct:
          if (t.id < nvars_) {
            col = t.id;
          }
          break;
        case BasisToken::Kind::kSlack:
          if (t.id < m_) {
            // Equality rows carry no slack; a rebased token for a fresh kEq
            // row (IlpWarmStart::RemapRows) resolves to the row's artificial
            // instead. Exported tokens always reference a real slack, so the
            // fallback only engages for synthetic rebased tokens.
            col = slack_col_[t.id] >= 0 ? slack_col_[t.id] : art_col_[t.id];
          }
          break;
        case BasisToken::Kind::kArt:
          if (t.id < m_) {
            col = art_col_[t.id];
          }
          break;
      }
      if (col < 0) {
        return false;
      }
      cols.push_back(static_cast<std::uint32_t>(col));
    }
    // Trailing rows (the freshly appended branching bounds) contribute their
    // slacks: block-triangular against the parent basis, hence nonsingular.
    for (std::uint32_t r = static_cast<std::uint32_t>(warm.size()); r < m_; ++r) {
      if (slack_col_[r] < 0) {
        return false;
      }
      cols.push_back(static_cast<std::uint32_t>(slack_col_[r]));
    }
    std::fill(in_basis_.begin(), in_basis_.end(), 0);
    for (std::uint32_t p = 0; p < m_; ++p) {
      if (in_basis_[cols[p]]) {
        return false;  // duplicate
      }
      basis_[p] = cols[p];
      in_basis_[cols[p]] = 1;
    }
    ClearEtas();
    pivots_since_factor_ = 0;
    if (!TryRefactorize()) {
      return false;
    }
    // A basic artificial at a POSITIVE value encodes an infeasible point the
    // warm path cannot repair: artificials never re-enter in phase 2 and the
    // dual loop only drives out negative basics. (A negative basic
    // artificial — a freshly rebased equality row whose edge still flows —
    // is exactly what the dual repair removes, so it passes.) Happens when a
    // row's rhs was edited under a degenerate artificial: fall back to the
    // cold two-phase solve.
    for (std::uint32_t p = 0; p < m_; ++p) {
      if (basis_[p] >= art_base_ && beta_[p] > kEps) {
        return false;
      }
    }
    return true;
  }

  SolveStatus Iterate() {
    std::uint64_t pivots = 0;
    for (;;) {
      if (++pivots > kMaxPivots) {
        pivots_total_ += pivots;
        return SolveStatus::kIterationLimit;
      }
      ComputeDuals(y_);
      PriceAll(y_, rc_);
      std::int64_t enter = -1;
      if (pivots < kMaxPivots / 2) {
        double best = -kEps;
        for (std::uint32_t c = 0; c < limit_; ++c) {
          if (!in_basis_[c] && rc_[c] < best) {
            best = rc_[c];
            enter = c;
          }
        }
      } else {
        // Bland's rule: first improving column, first eligible row below.
        for (std::uint32_t c = 0; c < limit_; ++c) {
          if (!in_basis_[c] && rc_[c] < -kEps) {
            enter = c;
            break;
          }
        }
      }
      if (enter < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kOptimal;
      }
      FtranColumn(static_cast<std::uint32_t>(enter), w_);
      std::int64_t leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::uint32_t p = 0; p < m_; ++p) {
        const double a = w_[p];
        if (a > kEps) {
          const double ratio = beta_[p] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leave >= 0 && basis_[p] < basis_[leave])) {
            best_ratio = ratio;
            leave = p;
          }
        }
      }
      if (leave < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kUnbounded;
      }
      PivotStep(static_cast<std::uint32_t>(leave), static_cast<std::uint32_t>(enter));
    }
  }

  // Dual simplex: drives negative basic values out while keeping phase-2
  // reduced costs nonnegative. Used only to repair warm-started bases, so any
  // numerical surprise requests a cold solve instead of fighting through.
  SolveStatus DualIterate(bool& need_cold) {
    std::uint64_t pivots = 0;
    for (;;) {
      if (++pivots > kMaxPivots) {
        pivots_total_ += pivots;
        need_cold = true;
        return SolveStatus::kIterationLimit;
      }
      std::int64_t p = -1;
      double most = -kEps;
      for (std::uint32_t r = 0; r < m_; ++r) {
        if (beta_[r] < most) {
          most = beta_[r];
          p = r;
        }
      }
      if (p < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kOptimal;  // primal feasible
      }
      ComputeDuals(y_);
      PriceAll(y_, rc_);
      // alpha = row p of B^-1 A.
      std::fill(y_.begin(), y_.end(), 0.0);
      y_[static_cast<std::uint32_t>(p)] = 1.0;
      Btran(y_);
      for (std::uint32_t c = 0; c < limit_; ++c) {
        alpha_[c] = 0.0;
      }
      for (std::uint32_t r = 0; r < m_; ++r) {
        const double yr = y_[r];
        if (yr == 0.0) {
          continue;
        }
        for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          const std::uint32_t c = row_col_[k];
          if (c < limit_) {
            alpha_[c] += yr * row_val_[k];
          }
        }
      }
      std::int64_t enter = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::uint32_t c = 0; c < limit_; ++c) {
        if (in_basis_[c]) {
          continue;
        }
        const double a = alpha_[c];
        if (a < -kEps) {
          const double ratio = rc_[c] / (-a);
          if (ratio < best_ratio) {  // ties -> lowest column index
            best_ratio = ratio;
            enter = c;
          }
        }
      }
      if (enter < 0) {
        pivots_total_ += pivots;
        return SolveStatus::kInfeasible;  // negative basic, no fixing column
      }
      FtranColumn(static_cast<std::uint32_t>(enter), w_);
      if (std::abs(w_[static_cast<std::uint32_t>(p)]) < 1e-11) {
        pivots_total_ += pivots;
        need_cold = true;
        return SolveStatus::kIterationLimit;
      }
      PivotStep(static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(enter));
    }
  }

  void DriveOutArtificials() {
    // Ascending artificial id == ascending original row, matching the dense
    // twin's row-major sweep.
    for (std::uint32_t a = 0; a < num_artificial_; ++a) {
      const std::uint32_t col = art_base_ + a;
      if (!in_basis_[col]) {
        continue;
      }
      std::uint32_t p = 0;
      while (p < m_ && basis_[p] != col) {
        ++p;
      }
      if (p == m_) {
        continue;
      }
      // Tableau row p: alpha_j = (B^-T e_p) . A_j.
      std::fill(y_.begin(), y_.end(), 0.0);
      y_[p] = 1.0;
      Btran(y_);
      for (std::uint32_t c = 0; c < art_base_; ++c) {
        alpha_[c] = 0.0;
      }
      for (std::uint32_t r = 0; r < m_; ++r) {
        const double yr = y_[r];
        if (yr == 0.0) {
          continue;
        }
        for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          const std::uint32_t c = row_col_[k];
          if (c < art_base_) {
            alpha_[c] += yr * row_val_[k];
          }
        }
      }
      for (std::uint32_t c = 0; c < art_base_; ++c) {
        if (in_basis_[c] || std::abs(alpha_[c]) <= 1e-6) {
          continue;
        }
        FtranColumn(c, w_);
        if (std::abs(w_[p]) < 1e-9) {
          continue;
        }
        PivotStep(p, c);
        break;
      }
      // If no column qualifies the row is redundant; leave the artificial.
    }
  }

  SolveResult Fail(SolveStatus st) const { return {st, 0, {}, pivots_total_}; }

  SolveResult Extract() const {
    SolveResult res;
    res.status = SolveStatus::kOptimal;
    res.objective = PhaseObjective();  // phase-2 costs are active here
    res.x.assign(nvars_, 0.0);
    for (std::uint32_t p = 0; p < m_; ++p) {
      if (basis_[p] < nvars_) {
        res.x[basis_[p]] = beta_[p];
      }
    }
    res.pivots = pivots_total_;
    return res;
  }

  // Refactorisation cadence: every FTRAN/BTRAN walks the whole eta file, so
  // per-iteration cost grows with accumulated eta fill. The singleton-peeling
  // refactorisation rebuilds the file near the basis matrix's own nnz, which
  // is cheap enough to amortise over a short window; the nnz trigger in
  // PivotStep is the backstop for unusually dense stretches.
  static constexpr std::uint32_t kRefactorEvery = 64;

  const LinearProgram& lp_;
  const std::vector<LinearProgram::Row>* extra_ = nullptr;

  std::uint32_t m_ = 0;
  std::uint32_t nvars_ = 0;
  std::uint32_t ncols_ = 0;
  std::uint32_t art_base_ = 0;
  std::uint32_t num_artificial_ = 0;
  std::uint32_t limit_ = 0;
  std::uint64_t nnz_ = 0;

  std::vector<int> slack_col_;  // per row, -1 if none
  std::vector<int> art_col_;    // per row, -1 if none
  std::vector<int> sign_;
  std::vector<int> home_row_;  // per column, owning row for slack/artificial

  std::vector<std::uint32_t> row_ptr_, row_col_;
  std::vector<double> row_val_;
  std::vector<std::uint32_t> col_ptr_, col_row_;
  std::vector<double> col_val_;
  std::vector<double> b_;

  std::vector<std::uint32_t> basis_;
  std::vector<char> in_basis_;
  std::vector<double> beta_;
  // Flat eta pool (see ApplyEta) plus reusable refactorisation scratch: the
  // scratch arrays become the live pool by swap, so both sides keep their
  // heap capacity across the many refactorisations of a long solve.
  std::vector<std::uint32_t> eta_r_, eta_ptr_, eta_row_;
  std::vector<double> eta_pivot_, eta_val_;
  std::vector<std::uint32_t> scratch_r_, scratch_ptr_, scratch_row_;
  std::vector<double> scratch_pivot_, scratch_val_;
  std::vector<double> wrk_w_;
  std::vector<char> wrk_mask_;
  std::vector<std::uint32_t> wrk_touched_, wrk_heap_;
  std::uint32_t pivots_since_factor_ = 0;

  std::vector<double> c_;
  std::vector<double> y_, w_, rc_, alpha_;
  std::uint64_t pivots_total_ = 0;
};

}  // namespace

SolveResult SolveLp(const LinearProgram& lp) {
  SolveResult res;
  if (wcet::ReferenceMode()) {
    res = Simplex(lp).Solve();
  } else {
    res = RevisedSimplex(lp).Solve();
  }
  LpSolveCounter().Inc();
  PivotCounter().Inc(res.pivots);
  return res;
}

namespace {

// Shared branch-and-bound driver. |root_warm| (nullable) seeds the root
// relaxation's basis; |root_basis_out| (nullable) receives the root's
// optimal basis for the caller to carry into the next edited instance.
SolveResult SolveIlpImpl(const LinearProgram& lp, std::uint32_t max_nodes,
                         const std::vector<BasisToken>* root_warm,
                         std::vector<BasisToken>* root_basis_out) {
  // Branch and bound, depth-first, best-incumbent pruning. The node order,
  // branching variable choice and pruning thresholds are shared between the
  // sparse and reference solver paths so truncation behaviour is identical.
  const bool reference = wcet::ReferenceMode();
  struct Node {
    std::vector<LinearProgram::Row> extra;
    std::vector<BasisToken> warm;  // parent's optimal basis (sparse path)
  };
  std::vector<Node> stack{Node{}};
  if (!reference && root_warm != nullptr && !root_warm->empty()) {
    stack.back().warm = *root_warm;
  }
  SolveResult best;
  best.status = SolveStatus::kInfeasible;
  double incumbent = -std::numeric_limits<double>::infinity();
  std::uint32_t explored = 0;
  std::uint64_t pivots_total = 0;
  bool hit_limit = false;

  while (!stack.empty()) {
    if (++explored > max_nodes) {
      hit_limit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    BbNodeCounter().Inc();

    SolveResult rel;
    std::vector<BasisToken> basis_out;
    if (reference) {
      LinearProgram sub = lp;
      for (const auto& row : node.extra) {
        sub.AddRow(row);
      }
      rel = Simplex(sub).Solve();
    } else {
      RevisedSimplex rs(lp, &node.extra);
      if (!node.warm.empty()) {
        BbWarmStartCounter().Inc();
      }
      rel = node.warm.empty() ? rs.Solve() : rs.SolveWarm(node.warm);
      if (rel.status == SolveStatus::kOptimal) {
        basis_out = rs.ExportBasis();
        if (explored == 1 && root_basis_out != nullptr) {
          *root_basis_out = basis_out;
        }
      }
    }
    pivots_total += rel.pivots;
    if (rel.status == SolveStatus::kUnbounded) {
      rel.pivots = pivots_total;
      return rel;  // the ILP itself is unbounded (missing loop bound)
    }
    if (rel.status != SolveStatus::kOptimal || rel.objective <= incumbent + 1e-6) {
      continue;
    }
    // Find a fractional variable.
    std::int64_t frac = -1;
    for (std::uint32_t v = 0; v < lp.num_vars; ++v) {
      if (std::abs(rel.x[v] - std::round(rel.x[v])) > 1e-5) {
        frac = v;
        break;
      }
    }
    if (frac < 0) {
      incumbent = rel.objective;
      best = std::move(rel);
      for (double& xv : best.x) {
        xv = std::round(xv);
      }
      continue;
    }
    const double v = rel.x[frac];
    Node down;
    down.extra = node.extra;
    {
      LinearProgram::Row r;
      r.idx = {static_cast<std::uint32_t>(frac)};
      r.val = {1.0};
      r.rhs = std::floor(v);
      r.type = LinearProgram::RowType::kLe;
      down.extra.push_back(std::move(r));
    }
    down.warm = basis_out;
    Node up;
    up.extra = std::move(node.extra);
    {
      // x >= ceil(v)  <=>  -x <= -ceil(v)
      LinearProgram::Row r;
      r.idx = {static_cast<std::uint32_t>(frac)};
      r.val = {-1.0};
      r.rhs = -std::ceil(v);
      r.type = LinearProgram::RowType::kLe;
      up.extra.push_back(std::move(r));
    }
    up.warm = std::move(basis_out);
    stack.push_back(std::move(up));
    stack.push_back(std::move(down));
  }

  if (best.status != SolveStatus::kOptimal && hit_limit) {
    best.status = SolveStatus::kIterationLimit;
  }
  best.pivots = pivots_total;
  PivotCounter().Inc(pivots_total);
  return best;
}

}  // namespace

SolveResult SolveIlp(const LinearProgram& lp, std::uint32_t max_nodes) {
  return SolveIlpImpl(lp, max_nodes, nullptr, nullptr);
}

SolveResult SolveIlpWarm(const LinearProgram& lp, IlpWarmStart& warm, std::uint32_t max_nodes) {
  if (wcet::ReferenceMode()) {
    // The dense twin neither consumes nor produces bases; leave |warm| as-is
    // so the reference path stays byte-for-byte the seed solver.
    return SolveIlpImpl(lp, max_nodes, nullptr, nullptr);
  }
  const bool warmed = warm.valid();
  if (warmed) {
    IncWarmSolveCounter().Inc();
  } else {
    IncColdSolveCounter().Inc();
  }
  std::vector<BasisToken> root_out;
  const SolveResult res =
      SolveIlpImpl(lp, max_nodes, warmed ? &warm.impl_->tokens : nullptr, &root_out);
  if (!root_out.empty()) {
    warm.impl_->tokens = std::move(root_out);
  } else {
    warm.Reset();  // root did not reach optimality; a stale basis is useless
  }
  return res;
}

}  // namespace pmk
