// Exact integer-linear-programming solver for IPET (paper Section 5.2).
//
// Chronos emits an ILP that is handed to an off-the-shelf solver; we build
// that solver too. The production path is a sparse revised simplex (CSR/CSC
// constraint matrix, product-form eta-file basis inverse with periodic
// refactorisation, warm-started branch-and-bound); a dense two-phase tableau
// twin is retained behind pmk::wcet::SetReferenceMode and both paths must
// agree exactly on status, bounds and solutions. IPET instances are
// network-flow shaped, so the relaxation is almost always integral and
// branching is a rarely-exercised safety net.

#ifndef SRC_WCET_ILP_H_
#define SRC_WCET_ILP_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace pmk {

struct LinearProgram {
  enum class RowType : std::uint8_t { kLe, kEq };

  struct Row {
    // Sparse coefficients: parallel (index, value) lists.
    std::vector<std::uint32_t> idx;
    std::vector<double> val;
    double rhs = 0;
    RowType type = RowType::kLe;
  };

  std::uint32_t num_vars = 0;
  std::vector<double> objective;  // maximize objective . x, x >= 0
  std::vector<Row> rows;

  std::uint32_t AddVar(double obj_coeff = 0) {
    objective.push_back(obj_coeff);
    return num_vars++;
  }
  void AddRow(Row row) { rows.push_back(std::move(row)); }
};

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct SolveResult {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
  // Simplex iterations attempted (summed over phases and, for SolveIlp, over
  // all branch-and-bound nodes). Diagnostic only: lets tests assert that the
  // Bland anti-cycling rule or the warm-start path actually engaged.
  std::uint64_t pivots = 0;
};

// Solves the LP relaxation (x real, >= 0).
SolveResult SolveLp(const LinearProgram& lp);

// Solves with all variables integer. |max_nodes| bounds branch-and-bound.
SolveResult SolveIlp(const LinearProgram& lp, std::uint32_t max_nodes = 10'000);

// Opaque carrier for a previous solve's optimal basis (position-independent
// tokens: structural var / slack-of-row / artificial-of-row). Lets the next
// SolveIlpWarm of a slightly edited instance restart the sparse revised
// simplex from where the last one finished instead of solving cold.
class IlpWarmStart {
 public:
  IlpWarmStart();
  ~IlpWarmStart();
  IlpWarmStart(IlpWarmStart&&) noexcept;
  IlpWarmStart& operator=(IlpWarmStart&&) noexcept;

  bool valid() const;
  void Reset();  // forget the stored basis (forces the next solve cold)

  // Rebases the stored basis across an in-place row edit described by
  // |old_to_new|: entry r holds the new index of old row r, or -1 if that
  // row was removed. |new_count| is the edited instance's row count; new
  // rows (indices absent from the mapping) enter with their own slack or
  // artificial basic — block-triangular against the surviving basis.
  // Structural tokens pass through untouched; slack/artificial tokens are
  // re-indexed through the mapping, and a token whose row was removed is
  // substituted with its position's own slack. Without this, a row-count
  // change leaves every later slack token pointing at the wrong row and the
  // "warm" solve degenerates into near-cold repair. No-op when no basis is
  // stored; a mapping that doesn't match the stored basis drops it (next
  // solve runs cold).
  void RemapRows(const std::vector<std::int32_t>& old_to_new, std::uint32_t new_count);

 private:
  friend SolveResult SolveIlpWarm(const LinearProgram&, IlpWarmStart&, std::uint32_t);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// SolveIlp, warm-restarting the root relaxation from |warm| when it holds a
// basis: the stored basis is re-imported against the new instance (rows may
// have been patched in place or LE rows appended at the end), refactorised,
// repaired to primal feasibility by a bounded dual-simplex loop, then
// cleaned up by the primal. Any import or numerical trouble falls back
// deterministically to a cold solve — the result is always identical to
// SolveIlp on the same instance. On an optimal solve the root basis is
// stored back into |warm| for the next call. Under
// pmk::wcet::SetReferenceMode the dense twin runs instead and |warm| is
// left untouched.
SolveResult SolveIlpWarm(const LinearProgram& lp, IlpWarmStart& warm,
                         std::uint32_t max_nodes = 10'000);

}  // namespace pmk

#endif  // SRC_WCET_ILP_H_
