// Exact integer-linear-programming solver for IPET (paper Section 5.2).
//
// Chronos emits an ILP that is handed to an off-the-shelf solver; we build
// that solver too. The production path is a sparse revised simplex (CSR/CSC
// constraint matrix, product-form eta-file basis inverse with periodic
// refactorisation, warm-started branch-and-bound); a dense two-phase tableau
// twin is retained behind pmk::wcet::SetReferenceMode and both paths must
// agree exactly on status, bounds and solutions. IPET instances are
// network-flow shaped, so the relaxation is almost always integral and
// branching is a rarely-exercised safety net.

#ifndef SRC_WCET_ILP_H_
#define SRC_WCET_ILP_H_

#include <cstdint>
#include <vector>

namespace pmk {

struct LinearProgram {
  enum class RowType : std::uint8_t { kLe, kEq };

  struct Row {
    // Sparse coefficients: parallel (index, value) lists.
    std::vector<std::uint32_t> idx;
    std::vector<double> val;
    double rhs = 0;
    RowType type = RowType::kLe;
  };

  std::uint32_t num_vars = 0;
  std::vector<double> objective;  // maximize objective . x, x >= 0
  std::vector<Row> rows;

  std::uint32_t AddVar(double obj_coeff = 0) {
    objective.push_back(obj_coeff);
    return num_vars++;
  }
  void AddRow(Row row) { rows.push_back(std::move(row)); }
};

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct SolveResult {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
  // Simplex iterations attempted (summed over phases and, for SolveIlp, over
  // all branch-and-bound nodes). Diagnostic only: lets tests assert that the
  // Bland anti-cycling rule or the warm-start path actually engaged.
  std::uint64_t pivots = 0;
};

// Solves the LP relaxation (x real, >= 0).
SolveResult SolveLp(const LinearProgram& lp);

// Solves with all variables integer. |max_nodes| bounds branch-and-bound.
SolveResult SolveIlp(const LinearProgram& lp, std::uint32_t max_nodes = 10'000);

}  // namespace pmk

#endif  // SRC_WCET_ILP_H_
