#include "src/wcet/incremental.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace pmk {

namespace {

// Per-stage cache effectiveness plus invalidation/patch telemetry. Pure
// observers: the analysis results are a function of (image content, options)
// regardless of what gets counted. Warm-vs-cold simplex counts live in
// src/wcet/ilp.cc (wcet.inc.simplex.*).
obs::Counter& GraphHit() {
  static obs::Counter c("wcet.inc.graph.hit");
  return c;
}
obs::Counter& GraphMiss() {
  static obs::Counter c("wcet.inc.graph.miss");
  return c;
}
obs::Counter& LoopHit() {
  static obs::Counter c("wcet.inc.loopbound.hit");
  return c;
}
obs::Counter& LoopMiss() {
  static obs::Counter c("wcet.inc.loopbound.miss");
  return c;
}
obs::Counter& CostHit() {
  static obs::Counter c("wcet.inc.cost.hit");
  return c;
}
obs::Counter& CostMiss() {
  static obs::Counter c("wcet.inc.cost.miss");
  return c;
}
obs::Counter& IpetHit() {
  static obs::Counter c("wcet.inc.ipet.hit");
  return c;
}
obs::Counter& IpetMiss() {
  static obs::Counter c("wcet.inc.ipet.miss");
  return c;
}
obs::Counter& InvalidatedEntries() {
  static obs::Counter c("wcet.inc.invalidated");
  return c;
}
obs::Counter& RowsPatched() {
  static obs::Counter c("wcet.inc.rows_patched");
  return c;
}

void CountBounds(const std::vector<LoopBoundResult>& bounds, EntryResult& res) {
  res.loops_bounded_auto = 0;
  res.loops_bounded_annot = 0;
  for (const LoopBoundResult& b : bounds) {
    if (b.source == LoopBoundResult::Source::kComputed) {
      res.loops_bounded_auto++;
    } else if (b.source != LoopBoundResult::Source::kUnknown) {
      res.loops_bounded_annot++;
    }
  }
}

}  // namespace

IncrementalWcetAnalyzer::IncrementalWcetAnalyzer(const KernelImage& image,
                                                 const AnalysisOptions& options)
    : image_(&image),
      opts_(options),
      cost_opts_(BuildCostModelOptions(image, options)),
      block_cache_(std::make_unique<CostModelCache>(image.prog, cost_opts_)),
      digests_(image.prog) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const FuncId fn = AnalysisEntryFunc(image, static_cast<EntryPoint>(i));
    closure_blocks_[i] = ClosureBlocks(image.prog, CallClosure(image.prog, fn));
  }
}

IncrementalWcetAnalyzer::StageKeys IncrementalWcetAnalyzer::ComputeKeys(
    std::size_t entry_idx) const {
  const std::vector<BlockId>& blocks = closure_blocks_[entry_idx];
  StageKeys k;
  k.graph = digests_.Chain(blocks, DigestStage::kStructure);
  k.loops = digests_.Chain(blocks, DigestStage::kLoops, k.graph);
  k.cost = digests_.Chain(blocks, DigestStage::kCost, k.loops);
  k.ipet = digests_.Chain(blocks, DigestStage::kIpet, k.cost);
  return k;
}

void IncrementalWcetAnalyzer::FinishSolve(EntryCache& ec, EntryPoint entry) {
  const IpetResult ipet = SolveIpetProgramWarm(*ec.graph, ec.prog, ec.warm);
  EntryResult& res = ec.result;
  res.entry = entry;
  res.status = ipet.status;
  res.nodes = ec.graph->nodes().size();
  res.edges = ec.graph->edges().size();
  CountBounds(ec.bounds, res);
  res.wcet = 0;
  res.micros = 0;
  res.worst_trace = Trace{};
  if (ipet.status == SolveStatus::kOptimal) {
    res.wcet = ipet.wcet;
    res.micros = ClockSpec{}.ToMicros(ipet.wcet);
    res.worst_trace = ExtractWorstTrace(*ec.graph, ipet);
  }
  ec.valid = true;
}

const EntryResult& IncrementalWcetAnalyzer::Analyze(EntryPoint entry) {
  const std::size_t i = static_cast<std::size_t>(entry);
  EntryCache& ec = entries_[i];
  const StageKeys keys = ComputeKeys(i);
  const IpetOptions iopts{opts_.irq_pending};

  if (!ec.valid || ec.keys.graph != keys.graph) {
    // Structural change (or first query): everything below re-derives and
    // the stored basis is meaningless for a different edge set.
    GraphMiss().Inc();
    LoopMiss().Inc();
    CostMiss().Inc();
    IpetMiss().Inc();
    ec.graph = std::make_unique<InlinedGraph>(image_->prog, AnalysisEntryFunc(*image_, entry));
    ec.bounds = ComputeLoopBounds(*ec.graph);
    ec.costs = ComputeNodeCosts(*ec.graph, *block_cache_);
    ec.prog = BuildIpetProgram(*ec.graph, ec.costs, iopts, opts_.constraints);
    ec.warm.Reset();
    ec.keys = keys;
    FinishSolve(ec, entry);
    return ec.result;
  }
  GraphHit().Inc();

  if (ec.keys.loops != keys.loops) {
    // Loop-control content moved: re-derive bounds on the cached graph,
    // re-run node costs (first-miss edge extras depend on the bounds), and
    // re-emit only the dirtied row families; the solve restarts warm.
    LoopMiss().Inc();
    CostMiss().Inc();
    IpetMiss().Inc();
    ec.bounds = ComputeLoopBounds(*ec.graph);
    ec.costs = ComputeNodeCosts(*ec.graph, *block_cache_);
    PatchIpetObjective(*ec.graph, ec.costs, ec.prog);
    std::size_t patched = PatchIpetLoopRows(*ec.graph, ec.prog, &ec.warm);
    // Absolute-exec bounds feed both the loop stage and the exec rows, so a
    // loop-stage move may dirty the extra families too.
    patched += PatchIpetExtraRows(*ec.graph, iopts, ec.prog, &ec.warm);
    RowsPatched().Inc(patched);
    ec.keys = keys;
    FinishSolve(ec, entry);
    return ec.result;
  }
  LoopHit().Inc();

  if (ec.keys.cost != keys.cost) {
    // Cost content moved with identical structure and loops: only the
    // objective coefficients change; every constraint row is reused as-is.
    CostMiss().Inc();
    IpetMiss().Inc();
    ec.costs = ComputeNodeCosts(*ec.graph, *block_cache_);
    PatchIpetObjective(*ec.graph, ec.costs, ec.prog);
    ec.keys = keys;
    FinishSolve(ec, entry);
    return ec.result;
  }
  CostHit().Inc();

  if (ec.keys.ipet != keys.ipet) {
    // Only ILP extras moved (preemption flags / absolute bounds): patch the
    // two trailing row families, keep graph/bounds/costs/objective.
    IpetMiss().Inc();
    RowsPatched().Inc(PatchIpetExtraRows(*ec.graph, iopts, ec.prog, &ec.warm));
    ec.keys = keys;
    FinishSolve(ec, entry);
    return ec.result;
  }
  IpetHit().Inc();
  return ec.result;
}

Cycles IncrementalWcetAnalyzer::InterruptResponseBound() {
  Cycles longest = 0;
  for (EntryPoint e : {EntryPoint::kSyscall, EntryPoint::kUndefined, EntryPoint::kPageFault}) {
    longest = std::max(longest, Analyze(e).wcet);
  }
  return longest + Analyze(EntryPoint::kInterrupt).wcet;
}

std::vector<Cycles> IncrementalWcetAnalyzer::PerBlockBounds() const {
  std::vector<Cycles> bounds(image_->prog.num_blocks(), 0);
  for (BlockId id = 0; id < bounds.size(); ++id) {
    bounds[id] = block_cache_->worst_case(id);
  }
  return bounds;
}

bool IncrementalWcetAnalyzer::NotifyBlockEdited(BlockId block) {
  const bool moved = digests_.Refresh(block);
  if (!moved) {
    return false;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const EntryCache& ec = entries_[i];
    if (!ec.valid) {
      continue;
    }
    // Only entries whose call closure contains the block can go stale.
    const std::vector<BlockId>& blocks = closure_blocks_[i];
    if (std::find(blocks.begin(), blocks.end(), block) == blocks.end()) {
      continue;
    }
    if (ComputeKeys(i).ipet != ec.keys.ipet) {
      InvalidatedEntries().Inc();
    }
  }
  return true;
}

bool IncrementalWcetAnalyzer::Fresh(EntryPoint e) const {
  const std::size_t i = static_cast<std::size_t>(e);
  const EntryCache& ec = entries_[i];
  // The ipet key chains every stage above it, so one comparison covers the
  // whole pipeline.
  return ec.valid && ComputeKeys(i).ipet == ec.keys.ipet;
}

}  // namespace pmk
