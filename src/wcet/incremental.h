// Incremental WCET analysis keyed on kernel-IR content digests (ROADMAP
// item 5's engine; paper context: every added preemption point re-runs the
// whole Table 2 / Fig 8 analysis, so re-analysis after a small edit must be
// cheap).
//
// Where WcetAnalyzer memoizes whole-kernel state behind std::call_once — any
// IR edit means building a new analyzer and re-deriving everything — this
// analyzer keys every pipeline stage on a chained FNV digest of the block
// content that stage actually consumes (src/kir/digest.h):
//
//   graph key = chain(structure digests over the entry's call closure)
//   loop  key = chain(loop digests, seeded by the graph key)
//   cost  key = chain(cost digests, seeded by the loop key)
//   ipet  key = chain(ipet digests, seeded by the cost key)
//
// A query re-derives only the stages below the first key that moved: a
// loop-bound annotation edit re-runs loop bounds + node costs and patches
// the dirtied ILP rows in place; a preemption-point toggle patches only the
// preemption/exec constraint-row families; anything structural rebuilds
// cold. The ILP solve itself warm-restarts from the previous optimal basis
// (SolveIlpWarm) and falls back to a cold solve deterministically — results
// are bit-identical to a fresh WcetAnalyzer on the edited image
// (wcet_incremental_test gates this against randomized edit scripts).
//
// Thread-safety contract: Analyze and NotifyBlockEdited mutate the caches
// and require exclusive access. Fresh/Cached/CachedResponseBound/
// PerBlockBounds are read-only and may run concurrently with each other.
// WcetService (src/wcet/serve.h) implements the shared/exclusive lock
// discipline on top of this contract for the query daemon.

#ifndef SRC_WCET_INCREMENTAL_H_
#define SRC_WCET_INCREMENTAL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/kernel/image.h"
#include "src/kir/digest.h"
#include "src/wcet/analysis.h"
#include "src/wcet/cost.h"
#include "src/wcet/ipet.h"
#include "src/wcet/loopbound.h"

namespace pmk {

class IncrementalWcetAnalyzer {
 public:
  IncrementalWcetAnalyzer(const KernelImage& image, const AnalysisOptions& options);

  // Analyzes |entry|, re-deriving only the stages whose content keys moved
  // since the last query. The returned reference stays valid until the next
  // Analyze/NotifyBlockEdited call.
  const EntryResult& Analyze(EntryPoint entry);

  // Worst-case interrupt response time (same formula as WcetAnalyzer):
  // max WCET over the non-interrupt entries + the interrupt path's WCET.
  Cycles InterruptResponseBound();

  // Unconditional per-block cost ceilings, from the immutable block-level
  // cost cache. Supported edits never change block cost content, so this is
  // constant for the analyzer's lifetime.
  std::vector<Cycles> PerBlockBounds() const;

  // Tells the analyzer |block|'s content may have changed (after a
  // Program::mutable_block edit). Recomputes the block's digests; entries
  // whose cached keys no longer match re-derive the affected stages on
  // their next Analyze. Returns true if any digest actually moved.
  bool NotifyBlockEdited(BlockId block);

  // True iff Analyze(|e|) would be a pure cache hit (read-only probe).
  bool Fresh(EntryPoint e) const;
  // The cached result of |e|; only meaningful while Fresh(e).
  const EntryResult& Cached(EntryPoint e) const {
    return entries_[static_cast<std::size_t>(e)].result;
  }

  const AnalysisOptions& options() const { return opts_; }
  const KernelImage& image() const { return *image_; }

 private:
  struct StageKeys {
    std::uint64_t graph = 0;
    std::uint64_t loops = 0;
    std::uint64_t cost = 0;
    std::uint64_t ipet = 0;
  };

  struct EntryCache {
    bool valid = false;  // result/prog populated at least once
    StageKeys keys;
    std::unique_ptr<InlinedGraph> graph;
    std::vector<LoopBoundResult> bounds;
    CostResult costs;
    IpetProgram prog;
    IlpWarmStart warm;
    EntryResult result;
  };

  StageKeys ComputeKeys(std::size_t entry_idx) const;
  void FinishSolve(EntryCache& ec, EntryPoint entry);

  const KernelImage* image_;
  AnalysisOptions opts_;
  CostModelOptions cost_opts_;
  std::unique_ptr<CostModelCache> block_cache_;
  ProgramDigests digests_;
  std::array<std::vector<BlockId>, 4> closure_blocks_;
  std::array<EntryCache, 4> entries_;
};

}  // namespace pmk

#endif  // SRC_WCET_INCREMENTAL_H_
