#include "src/wcet/ipet.h"

#include <cassert>
#include <cmath>
#include <list>
#include <map>
#include <stdexcept>

namespace pmk {

IpetResult RunIpet(const InlinedGraph& g, const CostResult& costs,
                   const IpetOptions& options,
                   const std::vector<ManualConstraint>& constraints) {
  LinearProgram lp;
  // One variable per edge; objective: entering an edge pays its target's
  // per-execution cost plus any loop first-miss charge on the edge itself.
  for (const InlinedEdge& e : g.edges()) {
    double coeff = static_cast<double>(costs.edge_extras[e.id]);
    if (e.to != kNoNode) {
      coeff += static_cast<double>(costs.node_costs[e.to]);
    }
    lp.AddVar(coeff);
  }

  // Flow conservation at every node.
  for (const InlinedNode& n : g.nodes()) {
    LinearProgram::Row row;
    row.type = LinearProgram::RowType::kEq;
    row.rhs = 0;
    for (EdgeId eid : n.in) {
      row.idx.push_back(eid);
      row.val.push_back(1.0);
    }
    for (EdgeId eid : n.out) {
      row.idx.push_back(eid);
      row.val.push_back(-1.0);
    }
    lp.AddRow(std::move(row));
  }

  // The kernel is entered exactly once.
  {
    LinearProgram::Row row;
    row.type = LinearProgram::RowType::kEq;
    row.rhs = 1;
    row.idx.push_back(g.source_edge());
    row.val.push_back(1.0);
    lp.AddRow(std::move(row));
  }

  // Loop bounds: head executions <= bound * entry-edge executions.
  for (const InlinedLoop& loop : g.loops()) {
    if (loop.bound == 0) {
      continue;  // unbounded: the LP detects it if the path can use the loop
    }
    LinearProgram::Row row;
    row.type = LinearProgram::RowType::kLe;
    row.rhs = 0;
    for (EdgeId eid : g.nodes()[loop.head].in) {
      row.idx.push_back(eid);
      row.val.push_back(1.0);
    }
    for (EdgeId eid : loop.entries) {
      row.idx.push_back(eid);
      row.val.push_back(-static_cast<double>(loop.bound));
    }
    lp.AddRow(std::move(row));
  }

  // Analyzed paths end at the FIRST path-end block they reach (kernel exit
  // or transfer to the interrupt handler): path-end nodes may only flow into
  // the virtual sink, never onward into post-path code.
  for (const InlinedNode& n : g.nodes()) {
    if (!g.BlockOf(n.id).is_path_end) {
      continue;
    }
    for (EdgeId eid : n.out) {
      if (g.edges()[eid].kind == InlinedEdge::Kind::kSink) {
        continue;
      }
      LinearProgram::Row row;
      row.type = LinearProgram::RowType::kEq;
      row.rhs = 0;
      row.idx.push_back(eid);
      row.val.push_back(1.0);
      lp.AddRow(std::move(row));
    }
  }

  // Latency mode: execution cannot continue past a preemption point.
  if (options.irq_pending) {
    for (const InlinedNode& n : g.nodes()) {
      if (!g.BlockOf(n.id).is_preemption_point) {
        continue;
      }
      for (EdgeId eid : n.out) {
        if (g.edges()[eid].kind == InlinedEdge::Kind::kFallThrough) {
          LinearProgram::Row row;
          row.type = LinearProgram::RowType::kEq;
          row.rhs = 0;
          row.idx.push_back(eid);
          row.val.push_back(1.0);
          lp.AddRow(std::move(row));
        }
      }
    }
  }

  // Absolute execution bounds declared on blocks.
  {
    std::map<BlockId, std::vector<NodeId>> by_block;
    for (const InlinedNode& n : g.nodes()) {
      if (g.BlockOf(n.id).absolute_exec_bound != 0) {
        by_block[n.block].push_back(n.id);
      }
    }
    for (const auto& [bid, nodes] : by_block) {
      LinearProgram::Row row;
      row.type = LinearProgram::RowType::kLe;
      row.rhs = g.program().block(bid).absolute_exec_bound;
      for (NodeId n : nodes) {
        for (EdgeId eid : g.nodes()[n].in) {
          row.idx.push_back(eid);
          row.val.push_back(1.0);
        }
      }
      lp.AddRow(std::move(row));
    }
  }

  // Manual constraints (Section 5.2).
  const auto in_edges_of_block = [&](BlockId bid, LinearProgram::Row& row, double coeff) {
    for (const InlinedNode& n : g.nodes()) {
      if (n.block == bid) {
        for (EdgeId eid : n.in) {
          row.idx.push_back(eid);
          row.val.push_back(coeff);
        }
      }
    }
  };
  for (const ManualConstraint& mc : constraints) {
    LinearProgram::Row row;
    switch (mc.kind) {
      case ManualConstraint::Kind::kConflict: {
        // Both blocks execute at most once per invocation of their (shared)
        // function; per invocation only one of them may run. Globally:
        // n_a + n_b <= invocations of the function = entries of its clones.
        row.type = LinearProgram::RowType::kLe;
        row.rhs = 0;
        in_edges_of_block(mc.a, row, 1.0);
        in_edges_of_block(mc.b, row, 1.0);
        const FuncId f = g.program().block(mc.a).func;
        const BlockId entry = g.program().function(f).entry;
        in_edges_of_block(entry, row, -1.0);
        break;
      }
      case ManualConstraint::Kind::kConsistent: {
        row.type = LinearProgram::RowType::kEq;
        row.rhs = 0;
        in_edges_of_block(mc.a, row, 1.0);
        in_edges_of_block(mc.b, row, -1.0);
        break;
      }
      case ManualConstraint::Kind::kExecutes: {
        row.type = LinearProgram::RowType::kLe;
        row.rhs = mc.n;
        in_edges_of_block(mc.a, row, 1.0);
        break;
      }
    }
    lp.AddRow(std::move(row));
  }

  const SolveResult sol = SolveIlp(lp);
  IpetResult res;
  res.status = sol.status;
  if (sol.status != SolveStatus::kOptimal) {
    return res;
  }
  res.wcet = static_cast<Cycles>(std::llround(sol.objective));
  res.edge_counts.resize(g.edges().size(), 0);
  for (std::size_t e = 0; e < g.edges().size(); ++e) {
    res.edge_counts[e] = static_cast<std::uint32_t>(std::llround(sol.x[e]));
  }
  res.node_counts.resize(g.nodes().size(), 0);
  for (const InlinedEdge& e : g.edges()) {
    if (e.to != kNoNode) {
      res.node_counts[e.to] += res.edge_counts[e.id];
    }
  }
  return res;
}

Trace ExtractWorstTrace(const InlinedGraph& g, const IpetResult& result) {
  if (result.status != SolveStatus::kOptimal) {
    throw std::logic_error("ExtractWorstTrace: no optimal solution");
  }
  // A worst path can legitimately be astronomically long (e.g. a fully
  // non-preemptible address-space teardown iterates millions of times);
  // materializing it block-by-block is useless. Return an empty trace
  // instead of exhausting memory.
  constexpr std::uint64_t kMaxTraceBlocks = 4u << 20;
  std::uint64_t total = 0;
  for (const std::uint32_t c : result.edge_counts) {
    total += c;
  }
  if (total > kMaxTraceBlocks) {
    return Trace{};
  }
  // Hierholzer walk over the multigraph defined by the edge counts, from the
  // entry node to the (unique) sink edge.
  std::vector<std::uint32_t> remaining = result.edge_counts;
  std::vector<std::size_t> next_out(g.nodes().size(), 0);

  std::list<NodeId> walk;
  walk.push_back(g.entry_node());

  const auto take_edge = [&](NodeId at) -> NodeId {
    const auto& outs = g.nodes()[at].out;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      const InlinedEdge& e = g.edges()[outs[i]];
      if (remaining[e.id] > 0) {
        remaining[e.id]--;
        return e.to;  // kNoNode for the sink
      }
    }
    return kNoNode;
  };

  // Hierholzer: build the primary path, then splice remaining cycles in at
  // the first position that still has unused out-edges.
  for (auto it = walk.begin(); it != walk.end(); ++it) {
    NodeId at = *it;
    const auto insert_pos = std::next(it);
    while (true) {
      const NodeId nxt = take_edge(at);
      if (nxt == kNoNode) {
        break;  // sink edge consumed or no edges left at this node
      }
      walk.insert(insert_pos, nxt);
      at = nxt;
    }
  }

  Trace t;
  for (NodeId n : walk) {
    t.blocks.push_back(g.nodes()[n].block);
  }
  // Leftover edge counts indicate a disconnected solution (shouldn't happen
  // with flow conservation); tolerate but flag via trace emptiness.
  return t;
}

}  // namespace pmk
