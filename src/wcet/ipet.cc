#include "src/wcet/ipet.h"

#include <cassert>
#include <cmath>
#include <list>
#include <map>
#include <stdexcept>
#include <utility>

namespace pmk {

namespace {

using Row = LinearProgram::Row;

bool RowsEqual(const Row& a, const Row& b) {
  return a.type == b.type && a.rhs == b.rhs && a.idx == b.idx && a.val == b.val;
}

// Flow conservation at every node, then the source row ("the kernel is
// entered exactly once").
std::vector<Row> BuildFlowRows(const InlinedGraph& g) {
  std::vector<Row> rows;
  rows.reserve(g.nodes().size() + 1);
  for (const InlinedNode& n : g.nodes()) {
    Row row;
    row.type = LinearProgram::RowType::kEq;
    row.rhs = 0;
    for (EdgeId eid : n.in) {
      row.idx.push_back(eid);
      row.val.push_back(1.0);
    }
    for (EdgeId eid : n.out) {
      row.idx.push_back(eid);
      row.val.push_back(-1.0);
    }
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.type = LinearProgram::RowType::kEq;
    row.rhs = 1;
    row.idx.push_back(g.source_edge());
    row.val.push_back(1.0);
    rows.push_back(std::move(row));
  }
  return rows;
}

// Loop bounds: head executions <= bound * entry-edge executions.
std::vector<Row> BuildLoopRows(const InlinedGraph& g) {
  std::vector<Row> rows;
  for (const InlinedLoop& loop : g.loops()) {
    if (loop.bound == 0) {
      continue;  // unbounded: the LP detects it if the path can use the loop
    }
    Row row;
    row.type = LinearProgram::RowType::kLe;
    row.rhs = 0;
    for (EdgeId eid : g.nodes()[loop.head].in) {
      row.idx.push_back(eid);
      row.val.push_back(1.0);
    }
    for (EdgeId eid : loop.entries) {
      row.idx.push_back(eid);
      row.val.push_back(-static_cast<double>(loop.bound));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Analyzed paths end at the FIRST path-end block they reach (kernel exit
// or transfer to the interrupt handler): path-end nodes may only flow into
// the virtual sink, never onward into post-path code.
std::vector<Row> BuildPathEndRows(const InlinedGraph& g) {
  std::vector<Row> rows;
  for (const InlinedNode& n : g.nodes()) {
    if (!g.BlockOf(n.id).is_path_end) {
      continue;
    }
    for (EdgeId eid : n.out) {
      if (g.edges()[eid].kind == InlinedEdge::Kind::kSink) {
        continue;
      }
      Row row;
      row.type = LinearProgram::RowType::kEq;
      row.rhs = 0;
      row.idx.push_back(eid);
      row.val.push_back(1.0);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// Latency mode: execution cannot continue past a preemption point.
std::vector<Row> BuildPreemptRows(const InlinedGraph& g, const IpetOptions& options) {
  std::vector<Row> rows;
  if (!options.irq_pending) {
    return rows;
  }
  for (const InlinedNode& n : g.nodes()) {
    if (!g.BlockOf(n.id).is_preemption_point) {
      continue;
    }
    for (EdgeId eid : n.out) {
      if (g.edges()[eid].kind == InlinedEdge::Kind::kFallThrough) {
        Row row;
        row.type = LinearProgram::RowType::kEq;
        row.rhs = 0;
        row.idx.push_back(eid);
        row.val.push_back(1.0);
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

// Absolute execution bounds declared on blocks (std::map keeps the emission
// order deterministic in BlockId).
std::vector<Row> BuildExecRows(const InlinedGraph& g) {
  std::vector<Row> rows;
  std::map<BlockId, std::vector<NodeId>> by_block;
  for (const InlinedNode& n : g.nodes()) {
    if (g.BlockOf(n.id).absolute_exec_bound != 0) {
      by_block[n.block].push_back(n.id);
    }
  }
  for (const auto& [bid, nodes] : by_block) {
    Row row;
    row.type = LinearProgram::RowType::kLe;
    row.rhs = g.program().block(bid).absolute_exec_bound;
    for (NodeId n : nodes) {
      for (EdgeId eid : g.nodes()[n].in) {
        row.idx.push_back(eid);
        row.val.push_back(1.0);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Manual constraints (Section 5.2).
std::vector<Row> BuildManualRows(const InlinedGraph& g,
                                 const std::vector<ManualConstraint>& constraints) {
  std::vector<Row> rows;
  const auto in_edges_of_block = [&](BlockId bid, Row& row, double coeff) {
    for (const InlinedNode& n : g.nodes()) {
      if (n.block == bid) {
        for (EdgeId eid : n.in) {
          row.idx.push_back(eid);
          row.val.push_back(coeff);
        }
      }
    }
  };
  for (const ManualConstraint& mc : constraints) {
    Row row;
    switch (mc.kind) {
      case ManualConstraint::Kind::kConflict: {
        // Both blocks execute at most once per invocation of their (shared)
        // function; per invocation only one of them may run. Globally:
        // n_a + n_b <= invocations of the function = entries of its clones.
        row.type = LinearProgram::RowType::kLe;
        row.rhs = 0;
        in_edges_of_block(mc.a, row, 1.0);
        in_edges_of_block(mc.b, row, 1.0);
        const FuncId f = g.program().block(mc.a).func;
        const BlockId entry = g.program().function(f).entry;
        in_edges_of_block(entry, row, -1.0);
        break;
      }
      case ManualConstraint::Kind::kConsistent: {
        row.type = LinearProgram::RowType::kEq;
        row.rhs = 0;
        in_edges_of_block(mc.a, row, 1.0);
        in_edges_of_block(mc.b, row, -1.0);
        break;
      }
      case ManualConstraint::Kind::kExecutes: {
        row.type = LinearProgram::RowType::kLe;
        row.rhs = mc.n;
        in_edges_of_block(mc.a, row, 1.0);
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Rebases |warm| across the upcoming splice of |fresh| over [begin, end).
// The family rebuild re-emits rows for every block, but an edit usually
// changes only a handful of them — and virtual inlining means one block edit
// can touch several scattered rows (one per inlined clone). A contiguous
// changed-span treatment would gut every basis token in between, so instead
// the old and fresh family rows are matched row-by-row on exact content
// (greedy, order-preserving — both sides are emitted in node order) and the
// full old-row -> new-row mapping is handed to RemapRows. Basis tokens of
// every surviving row carry over; only the genuinely removed/inserted rows
// perturb the basis, so the warm solve repairs a handful of columns instead
// of rebuilding half the family.
void RebaseWarmAcrossSplice(const LinearProgram& lp, std::uint32_t begin, std::uint32_t end,
                            const std::vector<Row>& fresh, IlpWarmStart* warm) {
  if (warm == nullptr) {
    return;
  }
  const std::uint32_t old_m = static_cast<std::uint32_t>(lp.rows.size());
  const std::uint32_t old_n = end - begin;
  const std::uint32_t new_n = static_cast<std::uint32_t>(fresh.size());
  const std::int64_t shift = static_cast<std::int64_t>(new_n) - old_n;
  std::vector<std::int32_t> old_to_new(old_m);
  for (std::uint32_t r = 0; r < begin; ++r) {
    old_to_new[r] = static_cast<std::int32_t>(r);
  }
  for (std::uint32_t r = end; r < old_m; ++r) {
    old_to_new[r] = static_cast<std::int32_t>(static_cast<std::int64_t>(r) + shift);
  }
  std::uint32_t j = 0;
  for (std::uint32_t i = 0; i < old_n; ++i) {
    // Match old row begin+i against the next unmatched fresh row with
    // identical content. Family rows are content-unique (each pins a
    // distinct edge/loop/block), so a lookahead hit is a genuine survivor
    // and everything skipped over is a fresh insertion.
    std::uint32_t jj = j;
    while (jj < new_n && !RowsEqual(lp.rows[begin + i], fresh[jj])) {
      ++jj;
    }
    if (jj < new_n) {
      old_to_new[begin + i] = static_cast<std::int32_t>(begin + jj);
      j = jj + 1;
    } else {
      old_to_new[begin + i] = -1;  // removed (or content-edited) row
    }
  }
  warm->RemapRows(old_to_new, static_cast<std::uint32_t>(static_cast<std::int64_t>(old_m) + shift));
}

// Splices |fresh| over rows [begin, end) of |lp|, returning how many of the
// surviving rows differ from what that span previously held.
std::size_t SpliceRows(LinearProgram& lp, std::uint32_t begin, std::uint32_t end,
                       std::vector<Row> fresh) {
  std::size_t changed = 0;
  const std::size_t old_n = end - begin;
  const std::size_t common = std::min(old_n, fresh.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!RowsEqual(lp.rows[begin + i], fresh[i])) {
      ++changed;
    }
  }
  changed += (old_n > common ? old_n - common : fresh.size() - common);
  lp.rows.erase(lp.rows.begin() + begin, lp.rows.begin() + end);
  lp.rows.insert(lp.rows.begin() + begin, std::make_move_iterator(fresh.begin()),
                 std::make_move_iterator(fresh.end()));
  return changed;
}

IpetResult ExtractIpetResult(const InlinedGraph& g, const SolveResult& sol) {
  IpetResult res;
  res.status = sol.status;
  if (sol.status != SolveStatus::kOptimal) {
    return res;
  }
  res.wcet = static_cast<Cycles>(std::llround(sol.objective));
  res.edge_counts.resize(g.edges().size(), 0);
  for (std::size_t e = 0; e < g.edges().size(); ++e) {
    res.edge_counts[e] = static_cast<std::uint32_t>(std::llround(sol.x[e]));
  }
  res.node_counts.resize(g.nodes().size(), 0);
  for (const InlinedEdge& e : g.edges()) {
    if (e.to != kNoNode) {
      res.node_counts[e.to] += res.edge_counts[e.id];
    }
  }
  return res;
}

}  // namespace

IpetProgram BuildIpetProgram(const InlinedGraph& g, const CostResult& costs,
                             const IpetOptions& options,
                             const std::vector<ManualConstraint>& constraints) {
  IpetProgram prog;
  LinearProgram& lp = prog.lp;
  // One variable per edge; objective: entering an edge pays its target's
  // per-execution cost plus any loop first-miss charge on the edge itself.
  for (const InlinedEdge& e : g.edges()) {
    double coeff = static_cast<double>(costs.edge_extras[e.id]);
    if (e.to != kNoNode) {
      coeff += static_cast<double>(costs.node_costs[e.to]);
    }
    lp.AddVar(coeff);
  }

  const auto append = [&lp](std::vector<Row> rows) {
    for (Row& row : rows) {
      lp.AddRow(std::move(row));
    }
    return static_cast<std::uint32_t>(lp.rows.size());
  };
  prog.flow_end = append(BuildFlowRows(g));
  prog.loops_end = append(BuildLoopRows(g));
  prog.pathend_end = append(BuildPathEndRows(g));
  prog.preempt_end = append(BuildPreemptRows(g, options));
  prog.exec_end = append(BuildExecRows(g));
  append(BuildManualRows(g, constraints));
  return prog;
}

void PatchIpetObjective(const InlinedGraph& g, const CostResult& costs, IpetProgram& prog) {
  for (const InlinedEdge& e : g.edges()) {
    double coeff = static_cast<double>(costs.edge_extras[e.id]);
    if (e.to != kNoNode) {
      coeff += static_cast<double>(costs.node_costs[e.to]);
    }
    prog.lp.objective[e.id] = coeff;
  }
}

std::size_t PatchIpetLoopRows(const InlinedGraph& g, IpetProgram& prog, IlpWarmStart* warm) {
  std::vector<Row> fresh = BuildLoopRows(g);
  const std::int64_t shift =
      static_cast<std::int64_t>(fresh.size()) - (prog.loops_end - prog.flow_end);
  RebaseWarmAcrossSplice(prog.lp, prog.flow_end, prog.loops_end, fresh, warm);
  const std::size_t changed = SpliceRows(prog.lp, prog.flow_end, prog.loops_end, std::move(fresh));
  prog.loops_end = static_cast<std::uint32_t>(prog.loops_end + shift);
  prog.pathend_end = static_cast<std::uint32_t>(prog.pathend_end + shift);
  prog.preempt_end = static_cast<std::uint32_t>(prog.preempt_end + shift);
  prog.exec_end = static_cast<std::uint32_t>(prog.exec_end + shift);
  return changed;
}

std::size_t PatchIpetExtraRows(const InlinedGraph& g, const IpetOptions& options,
                               IpetProgram& prog, IlpWarmStart* warm) {
  std::vector<Row> fresh_exec = BuildExecRows(g);
  const std::int64_t exec_shift =
      static_cast<std::int64_t>(fresh_exec.size()) - (prog.exec_end - prog.preempt_end);
  RebaseWarmAcrossSplice(prog.lp, prog.preempt_end, prog.exec_end, fresh_exec, warm);
  std::size_t changed =
      SpliceRows(prog.lp, prog.preempt_end, prog.exec_end, std::move(fresh_exec));

  std::vector<Row> fresh_preempt = BuildPreemptRows(g, options);
  const std::int64_t pre_shift =
      static_cast<std::int64_t>(fresh_preempt.size()) - (prog.preempt_end - prog.pathend_end);
  RebaseWarmAcrossSplice(prog.lp, prog.pathend_end, prog.preempt_end, fresh_preempt, warm);
  changed += SpliceRows(prog.lp, prog.pathend_end, prog.preempt_end, std::move(fresh_preempt));

  prog.preempt_end = static_cast<std::uint32_t>(prog.preempt_end + pre_shift);
  prog.exec_end = static_cast<std::uint32_t>(prog.exec_end + pre_shift + exec_shift);
  return changed;
}

IpetResult SolveIpetProgram(const InlinedGraph& g, const IpetProgram& prog) {
  return ExtractIpetResult(g, SolveIlp(prog.lp));
}

IpetResult SolveIpetProgramWarm(const InlinedGraph& g, const IpetProgram& prog,
                                IlpWarmStart& warm) {
  return ExtractIpetResult(g, SolveIlpWarm(prog.lp, warm));
}

IpetResult RunIpet(const InlinedGraph& g, const CostResult& costs,
                   const IpetOptions& options,
                   const std::vector<ManualConstraint>& constraints) {
  const IpetProgram prog = BuildIpetProgram(g, costs, options, constraints);
  return SolveIpetProgram(g, prog);
}

Trace ExtractWorstTrace(const InlinedGraph& g, const IpetResult& result) {
  if (result.status != SolveStatus::kOptimal) {
    throw std::logic_error("ExtractWorstTrace: no optimal solution");
  }
  // A worst path can legitimately be astronomically long (e.g. a fully
  // non-preemptible address-space teardown iterates millions of times);
  // materializing it block-by-block is useless. Return an empty trace
  // instead of exhausting memory.
  constexpr std::uint64_t kMaxTraceBlocks = 4u << 20;
  std::uint64_t total = 0;
  for (const std::uint32_t c : result.edge_counts) {
    total += c;
  }
  if (total > kMaxTraceBlocks) {
    return Trace{};
  }
  // Hierholzer walk over the multigraph defined by the edge counts, from the
  // entry node to the (unique) sink edge.
  std::vector<std::uint32_t> remaining = result.edge_counts;
  std::vector<std::size_t> next_out(g.nodes().size(), 0);

  std::list<NodeId> walk;
  walk.push_back(g.entry_node());

  const auto take_edge = [&](NodeId at) -> NodeId {
    const auto& outs = g.nodes()[at].out;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      const InlinedEdge& e = g.edges()[outs[i]];
      if (remaining[e.id] > 0) {
        remaining[e.id]--;
        return e.to;  // kNoNode for the sink
      }
    }
    return kNoNode;
  };

  // Hierholzer: build the primary path, then splice remaining cycles in at
  // the first position that still has unused out-edges.
  for (auto it = walk.begin(); it != walk.end(); ++it) {
    NodeId at = *it;
    const auto insert_pos = std::next(it);
    while (true) {
      const NodeId nxt = take_edge(at);
      if (nxt == kNoNode) {
        break;  // sink edge consumed or no edges left at this node
      }
      walk.insert(insert_pos, nxt);
      at = nxt;
    }
  }

  Trace t;
  for (NodeId n : walk) {
    t.blocks.push_back(g.nodes()[n].block);
  }
  // Leftover edge counts indicate a disconnected solution (shouldn't happen
  // with flow conservation); tolerate but flag via trace emptiness.
  return t;
}

}  // namespace pmk
