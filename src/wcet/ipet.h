// Implicit path enumeration (IPET): encodes the inlined CFG, loop bounds and
// manual path constraints as an ILP whose optimum is the WCET (Section 5.2).

#ifndef SRC_WCET_IPET_H_
#define SRC_WCET_IPET_H_

#include <vector>

#include "src/kir/trace.h"
#include "src/wcet/cfg.h"
#include "src/wcet/cost.h"
#include "src/wcet/ilp.h"

namespace pmk {

// Manual ILP constraints in the paper's three forms (Section 5.2):
//   kConflict:   "a conflicts with b in f" — never both in one invocation.
//   kConsistent: "a is consistent with b in f" — equal execution counts.
//   kExecutes:   "a executes n times" — at most n in all contexts combined.
struct ManualConstraint {
  enum class Kind : std::uint8_t { kConflict, kConsistent, kExecutes };
  Kind kind = Kind::kExecutes;
  BlockId a = kNoBlock;
  BlockId b = kNoBlock;
  std::uint32_t n = 0;
};

struct IpetOptions {
  // Interrupt-latency mode: an interrupt is assumed pending for the whole
  // path, so execution cannot continue past a preemption point (their
  // continue edges are pinned to zero). This is what bounds every
  // preemptible loop to a single chunk.
  bool irq_pending = true;
};

struct IpetResult {
  SolveStatus status = SolveStatus::kInfeasible;
  Cycles wcet = 0;
  std::vector<std::uint32_t> edge_counts;  // per InlinedGraph edge
  std::vector<std::uint32_t> node_counts;  // per InlinedGraph node
};

IpetResult RunIpet(const InlinedGraph& graph, const CostResult& costs,
                   const IpetOptions& options,
                   const std::vector<ManualConstraint>& constraints);

// Reconstructs a concrete worst-case block trace from the ILP solution
// (Hierholzer walk over the edge counts) — the paper's "converted the
// solution to a concrete execution trace" step (Section 6).
Trace ExtractWorstTrace(const InlinedGraph& graph, const IpetResult& result);

}  // namespace pmk

#endif  // SRC_WCET_IPET_H_
