// Implicit path enumeration (IPET): encodes the inlined CFG, loop bounds and
// manual path constraints as an ILP whose optimum is the WCET (Section 5.2).
//
// Construction and solving are split so the incremental engine
// (src/wcet/incremental.h) can keep one IpetProgram alive across kernel-IR
// edits: row families whose inputs did not change are reused structurally,
// only the dirtied families are re-emitted (PatchIpet*), and the solve is
// warm-restarted from the previous optimal basis (SolveIpetProgramWarm).
// RunIpet remains the one-shot wrapper: build everything, solve cold.

#ifndef SRC_WCET_IPET_H_
#define SRC_WCET_IPET_H_

#include <cstdint>
#include <vector>

#include "src/kir/trace.h"
#include "src/wcet/cfg.h"
#include "src/wcet/cost.h"
#include "src/wcet/ilp.h"

namespace pmk {

// Manual ILP constraints in the paper's three forms (Section 5.2):
//   kConflict:   "a conflicts with b in f" — never both in one invocation.
//   kConsistent: "a is consistent with b in f" — equal execution counts.
//   kExecutes:   "a executes n times" — at most n in all contexts combined.
struct ManualConstraint {
  enum class Kind : std::uint8_t { kConflict, kConsistent, kExecutes };
  Kind kind = Kind::kExecutes;
  BlockId a = kNoBlock;
  BlockId b = kNoBlock;
  std::uint32_t n = 0;
};

struct IpetOptions {
  // Interrupt-latency mode: an interrupt is assumed pending for the whole
  // path, so execution cannot continue past a preemption point (their
  // continue edges are pinned to zero). This is what bounds every
  // preemptible loop to a single chunk.
  bool irq_pending = true;
};

struct IpetResult {
  SolveStatus status = SolveStatus::kInfeasible;
  Cycles wcet = 0;
  std::vector<std::uint32_t> edge_counts;  // per InlinedGraph edge
  std::vector<std::uint32_t> node_counts;  // per InlinedGraph node
};

// The materialised ILP plus the row-family boundaries the incremental
// patchers need. Row layout (in order): flow-conservation + source rows
// (pure CFG structure), loop-bound rows, path-end pin rows (structure),
// preemption-point pin rows, absolute-execution-bound rows, manual rows.
struct IpetProgram {
  LinearProgram lp;
  std::uint32_t flow_end = 0;     // flow rows + the source row
  std::uint32_t loops_end = 0;    // then one row per bounded loop
  std::uint32_t pathend_end = 0;  // then path-end pin rows
  std::uint32_t preempt_end = 0;  // then preemption pin rows (irq mode)
  std::uint32_t exec_end = 0;     // then absolute-exec-bound rows; manual
                                  // rows run to lp.rows.size()
};

// Builds the full ILP for |graph| (identical row order to what RunIpet has
// always emitted).
IpetProgram BuildIpetProgram(const InlinedGraph& graph, const CostResult& costs,
                             const IpetOptions& options,
                             const std::vector<ManualConstraint>& constraints);

// Re-derives the per-edge objective coefficients from |costs|, leaving every
// constraint row untouched. O(edges).
void PatchIpetObjective(const InlinedGraph& graph, const CostResult& costs, IpetProgram& prog);

// Re-emits the loop-bound row family from the graph's current loop bounds,
// splicing it over the previous family (later families shift if the row
// count changed). When |warm| is given, its stored basis is rebased across
// the splice (IlpWarmStart::RemapRows) so the next solve still restarts
// warm even when the family grew or shrank. Returns the number of rows that
// actually differ.
std::size_t PatchIpetLoopRows(const InlinedGraph& graph, IpetProgram& prog,
                              IlpWarmStart* warm = nullptr);

// Re-emits the preemption-pin and absolute-exec-bound families from the
// blocks' current flags/bounds, rebasing |warm| across both splices when
// given. Returns the number of rows that differ.
std::size_t PatchIpetExtraRows(const InlinedGraph& graph, const IpetOptions& options,
                               IpetProgram& prog, IlpWarmStart* warm = nullptr);

// Solves a built program cold (reference/sparse per pmk::wcet mode).
IpetResult SolveIpetProgram(const InlinedGraph& graph, const IpetProgram& prog);

// Solves warm-restarting from |warm| (see SolveIlpWarm): bit-identical to
// the cold solve, just fewer pivots when the edit was small.
IpetResult SolveIpetProgramWarm(const InlinedGraph& graph, const IpetProgram& prog,
                                IlpWarmStart& warm);

IpetResult RunIpet(const InlinedGraph& graph, const CostResult& costs,
                   const IpetOptions& options,
                   const std::vector<ManualConstraint>& constraints);

// Reconstructs a concrete worst-case block trace from the ILP solution
// (Hierholzer walk over the edge counts) — the paper's "converted the
// solution to a concrete execution trace" step (Section 6).
Trace ExtractWorstTrace(const InlinedGraph& graph, const IpetResult& result);

}  // namespace pmk

#endif  // SRC_WCET_IPET_H_
