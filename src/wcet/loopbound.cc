#include "src/wcet/loopbound.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <optional>

#include "src/wcet/refmode.h"

namespace pmk {

namespace {

constexpr std::uint32_t kMaxIterations = 1u << 22;  // bounded-search cap
constexpr std::uint32_t kMaxCycles = 512;           // enumerated cycle shapes
constexpr std::uint32_t kMaxCycleLen = 256;

// The guard register controlling a loop: taken from semantic conditions on
// blocks of the head's function instance within the body.
std::optional<std::uint8_t> FindGuardReg(const InlinedGraph& g, const InlinedLoop& loop) {
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  for (NodeId n : loop.body) {
    if (g.nodes()[n].instance != inst) {
      continue;
    }
    const Block& b = g.BlockOf(n);
    if (b.cond.HasSemantics()) {
      return b.cond.lhs;
    }
  }
  return std::nullopt;
}

// Initial value of |reg| on loop entry: a LoopInput range on the head (take
// the max — all loop updates are decrements, checked below) or a kConst in
// the same instance outside the body.
std::optional<std::int64_t> FindInitValue(const InlinedGraph& g, const InlinedLoop& loop,
                                          std::uint8_t reg) {
  const Block& head = g.BlockOf(loop.head);
  for (const LoopInput& in : head.loop_inputs) {
    if (in.reg == reg) {
      return in.max;
    }
  }
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  std::vector<std::uint8_t> body(g.nodes().size(), 0);
  for (const NodeId n : loop.body) {
    body[n] = 1;
  }
  std::optional<std::int64_t> best;
  for (NodeId n : g.InstanceNodes(inst)) {
    if (body[n] != 0) {
      continue;
    }
    for (const RegOp& op : g.BlockOf(n).reg_ops) {
      if (op.kind == RegOp::Kind::kConst && op.dst == reg) {
        best = best ? std::max(*best, op.imm) : op.imm;
      }
    }
  }
  return best;
}

// Enumerates simple cycles head -> ... -> head within the body. Membership
// tests use flat per-node bitmaps; the DFS edge order (and therefore the
// enumerated cycle list) is unchanged.
void EnumerateCycles(const InlinedGraph& g, const InlinedLoop& loop,
                     std::vector<std::vector<EdgeId>>& out) {
  std::vector<std::uint8_t> body(g.nodes().size(), 0);
  for (const NodeId n : loop.body) {
    body[n] = 1;
  }
  std::vector<EdgeId> path;
  std::vector<std::uint8_t> visited(g.nodes().size(), 0);

  struct Frame {
    NodeId node;
    std::size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({loop.head, 0});

  while (!stack.empty() && out.size() < kMaxCycles) {
    Frame& f = stack.back();
    const auto& outs = g.nodes()[f.node].out;
    if (f.next_edge >= outs.size() || path.size() >= kMaxCycleLen) {
      if (stack.size() > 1) {
        visited[f.node] = 0;
        path.pop_back();
      }
      stack.pop_back();
      continue;
    }
    const EdgeId eid = outs[f.next_edge++];
    const InlinedEdge& e = g.edges()[eid];
    if (e.to == kNoNode || body[e.to] == 0) {
      continue;
    }
    if (e.to == loop.head) {
      path.push_back(eid);
      out.push_back(path);
      path.pop_back();
      continue;
    }
    if (visited[e.to] != 0) {
      continue;
    }
    visited[e.to] = 1;
    path.push_back(eid);
    stack.push_back({e.to, 0});
  }
}

// Whether traversing |eid| out of a semantically-conditional block is
// permitted when the guard condition evaluates to |cond_true|.
bool EdgeAllowed(const InlinedGraph& g, const Block& b, EdgeId eid, bool cond_true) {
  const InlinedEdge& e = g.edges()[eid];
  if (e.kind == InlinedEdge::Kind::kTaken) {
    return cond_true;  // both one- and two-sided: taken requires true
  }
  // Fall-through: one-sided guards may exit at any time; two-sided guards
  // fall through only when false.
  return b.cond.one_sided || !cond_true;
}

bool EvalCond(const BranchCond& c, std::int64_t v) {
  const std::int64_t rhs = c.rhs_imm;  // analysis tracks a single register
  switch (c.cmp) {
    case BranchCond::Cmp::kGe:
      return v >= rhs;
    case BranchCond::Cmp::kLt:
      return v < rhs;
    case BranchCond::Cmp::kEq:
      return v == rhs;
    case BranchCond::Cmp::kNe:
      return v != rhs;
    case BranchCond::Cmp::kNone:
      break;
  }
  return false;
}

// Simulates repeating |cycle| starting with reg=init; returns the number of
// head executions before the cycle becomes inconsistent with the guard, or
// nullopt if it exceeds the cap (unbounded as far as the search can tell).
std::optional<std::uint32_t> SimulateCycle(const InlinedGraph& g, const InlinedLoop& loop,
                                           std::uint8_t reg, std::int64_t init,
                                           const std::vector<EdgeId>& cycle) {
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  std::int64_t v = init;
  std::uint32_t count = 0;
  NodeId cur = loop.head;
  while (count < kMaxIterations) {
    count++;  // the head (and cycle) executes
    bool exited = false;
    for (EdgeId eid : cycle) {
      const InlinedEdge& e = g.edges()[eid];
      if (e.from != cur) {
        return std::nullopt;  // malformed cycle: refuse to bound
      }
      const Block& b = g.BlockOf(e.from);
      // Apply this block's register ops (same stack frame only).
      if (g.nodes()[e.from].instance == inst) {
        for (const RegOp& op : b.reg_ops) {
          if (op.dst != reg) {
            continue;
          }
          switch (op.kind) {
            case RegOp::Kind::kConst:
              v = op.imm;
              break;
            case RegOp::Kind::kAdd:
              v += op.imm;
              break;
            case RegOp::Kind::kMovReg:
              return std::nullopt;  // untracked source: give up
          }
        }
        if (b.cond.HasSemantics() && b.cond.lhs == reg && b.cond.rhs_is_imm) {
          if (!EdgeAllowed(g, b, eid, EvalCond(b.cond, v))) {
            exited = true;
            break;
          }
        }
      }
      cur = e.to;
    }
    if (exited) {
      return count;
    }
    assert(cur == loop.head);
  }
  return std::nullopt;
}

// Closed-form twin of SimulateCycle for the common shape: every tracked-reg
// update in the cycle is a constant add (no kConst reset, no kMovReg) and
// every guard compares the register against an immediate with kGe/kLt. The
// register at the start of iteration c is then init + (c-1)*D (D = net add
// per cycle), each guard's failure condition is a half-line in that linear
// value, and the first failing iteration is a division instead of a
// simulation that walks every iteration up to the real loop bound. Returns
// nullopt when the cycle is outside that shape (caller falls back to the
// simulation); otherwise the result is exactly SimulateCycle's, including
// the kMaxIterations unbounded cap.
std::optional<std::optional<std::uint32_t>> ClosedFormCycleCount(
    const InlinedGraph& g, const InlinedLoop& loop, std::uint8_t reg, std::int64_t init,
    const std::vector<EdgeId>& cycle) {
  const std::uint32_t inst = g.nodes()[loop.head].instance;

  // Symbolically execute one iteration: accumulate the running add-delta and
  // collect each guard check as (prefix delta, failure half-line).
  struct Guard {
    std::int64_t prefix = 0;  // reg delta applied before this check
    std::int64_t rhs = 0;
    bool fail_below = false;  // true: fails when v < rhs; false: v >= rhs
  };
  std::vector<Guard> guards;
  std::int64_t delta = 0;
  NodeId cur = loop.head;
  for (const EdgeId eid : cycle) {
    const InlinedEdge& e = g.edges()[eid];
    if (e.from != cur) {
      return std::nullopt;  // malformed: let the simulation refuse it
    }
    const Block& b = g.BlockOf(e.from);
    if (g.nodes()[e.from].instance == inst) {
      for (const RegOp& op : b.reg_ops) {
        if (op.dst != reg) {
          continue;
        }
        if (op.kind != RegOp::Kind::kAdd) {
          return std::nullopt;  // kConst reset or untracked kMovReg
        }
        delta += op.imm;
      }
      if (b.cond.HasSemantics() && b.cond.lhs == reg && b.cond.rhs_is_imm) {
        const bool taken = e.kind == InlinedEdge::Kind::kTaken;
        if (!taken && b.cond.one_sided) {
          // One-sided fall-through never exits; no failure condition.
        } else {
          Guard gd;
          gd.prefix = delta;
          gd.rhs = b.cond.rhs_imm;
          switch (b.cond.cmp) {
            case BranchCond::Cmp::kGe:
              // cond true iff v >= rhs; taken fails when false (v < rhs),
              // two-sided fall-through fails when true (v >= rhs).
              gd.fail_below = taken;
              break;
            case BranchCond::Cmp::kLt:
              gd.fail_below = !taken;
              break;
            default:
              return std::nullopt;  // kEq/kNe: not monotone in v
          }
          guards.push_back(gd);
        }
      }
    }
    cur = e.to;
  }
  if (cur != loop.head) {
    return std::nullopt;
  }

  // First iteration c >= 1 at which any guard fails, where the guarded value
  // is u(c) = init + (c-1)*delta + prefix.
  std::uint64_t first_fail = std::numeric_limits<std::uint64_t>::max();
  for (const Guard& gd : guards) {
    const __int128 a = static_cast<__int128>(init) + gd.prefix;  // u(1)
    const __int128 t = gd.rhs;
    std::uint64_t c = std::numeric_limits<std::uint64_t>::max();  // never
    if (gd.fail_below ? a < t : a >= t) {
      c = 1;
    } else if (delta != 0) {
      if (gd.fail_below && delta < 0) {
        // a - (c-1)*(-delta) < t, first at c-1 = floor((a-t)/(-delta)) + 1.
        const __int128 d = -static_cast<__int128>(delta);
        c = static_cast<std::uint64_t>((a - t) / d) + 2;
      } else if (!gd.fail_below && delta > 0) {
        // a + (c-1)*delta >= t, first at c-1 = ceil((t-a)/delta).
        const __int128 d = delta;
        c = static_cast<std::uint64_t>((t - a + d - 1) / d) + 1;
      }
      // Moving away from the threshold: never fails.
    }
    first_fail = std::min(first_fail, c);
  }
  if (first_fail > kMaxIterations) {
    return std::optional<std::uint32_t>(std::nullopt);  // simulation cap
  }
  return std::optional<std::uint32_t>(static_cast<std::uint32_t>(first_fail));
}

}  // namespace

std::vector<LoopBoundResult> ComputeLoopBounds(InlinedGraph& graph) {
  std::vector<LoopBoundResult> results;
  results.reserve(graph.loops().size());
  for (InlinedLoop& loop : graph.mutable_loops()) {
    LoopBoundResult res;
    const Block& head = graph.BlockOf(loop.head);

    const auto reg = FindGuardReg(graph, loop);
    if (reg.has_value()) {
      const auto init = FindInitValue(graph, loop, *reg);
      if (init.has_value()) {
        std::vector<std::vector<EdgeId>> cycles;
        EnumerateCycles(graph, loop, cycles);
        std::optional<std::uint32_t> worst;
        bool all_ok = !cycles.empty();
        const bool reference = wcet::ReferenceMode();
        for (const auto& cyc : cycles) {
          std::optional<std::uint32_t> n;
          bool have_n = false;
          if (!reference) {
            const auto fast = ClosedFormCycleCount(graph, loop, *reg, *init, cyc);
            if (fast.has_value()) {
              n = *fast;
              have_n = true;
            }
          }
          if (!have_n) {
            n = SimulateCycle(graph, loop, *reg, *init, cyc);
          }
          if (!n.has_value()) {
            all_ok = false;
            break;
          }
          worst = worst ? std::max(*worst, *n) : *n;
        }
        if (all_ok && worst.has_value()) {
          res.bound = *worst;
          res.source = LoopBoundResult::Source::kComputed;
        }
      }
    }
    if (res.bound == 0 && head.loop_bound_annotation != 0) {
      res.bound = head.loop_bound_annotation;
      res.source = LoopBoundResult::Source::kAnnotation;
    }
    if (res.bound == 0 && head.absolute_exec_bound != 0) {
      res.bound = head.absolute_exec_bound;
      res.source = LoopBoundResult::Source::kAbsolute;
    }
    loop.bound = res.bound;
    results.push_back(res);
  }
  return results;
}

}  // namespace pmk
