#include "src/wcet/loopbound.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <optional>
#include <set>

namespace pmk {

namespace {

constexpr std::uint32_t kMaxIterations = 1u << 22;  // bounded-search cap
constexpr std::uint32_t kMaxCycles = 512;           // enumerated cycle shapes
constexpr std::uint32_t kMaxCycleLen = 256;

// The guard register controlling a loop: taken from semantic conditions on
// blocks of the head's function instance within the body.
std::optional<std::uint8_t> FindGuardReg(const InlinedGraph& g, const InlinedLoop& loop) {
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  for (NodeId n : loop.body) {
    if (g.nodes()[n].instance != inst) {
      continue;
    }
    const Block& b = g.BlockOf(n);
    if (b.cond.HasSemantics()) {
      return b.cond.lhs;
    }
  }
  return std::nullopt;
}

// Initial value of |reg| on loop entry: a LoopInput range on the head (take
// the max — all loop updates are decrements, checked below) or a kConst in
// the same instance outside the body.
std::optional<std::int64_t> FindInitValue(const InlinedGraph& g, const InlinedLoop& loop,
                                          std::uint8_t reg) {
  const Block& head = g.BlockOf(loop.head);
  for (const LoopInput& in : head.loop_inputs) {
    if (in.reg == reg) {
      return in.max;
    }
  }
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  std::set<NodeId> body(loop.body.begin(), loop.body.end());
  std::optional<std::int64_t> best;
  for (NodeId n : g.InstanceNodes(inst)) {
    if (body.count(n) != 0) {
      continue;
    }
    for (const RegOp& op : g.BlockOf(n).reg_ops) {
      if (op.kind == RegOp::Kind::kConst && op.dst == reg) {
        best = best ? std::max(*best, op.imm) : op.imm;
      }
    }
  }
  return best;
}

// Enumerates simple cycles head -> ... -> head within the body.
void EnumerateCycles(const InlinedGraph& g, const InlinedLoop& loop,
                     std::vector<std::vector<EdgeId>>& out) {
  std::set<NodeId> body(loop.body.begin(), loop.body.end());
  std::vector<EdgeId> path;
  std::set<NodeId> visited;

  struct Frame {
    NodeId node;
    std::size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({loop.head, 0});

  while (!stack.empty() && out.size() < kMaxCycles) {
    Frame& f = stack.back();
    const auto& outs = g.nodes()[f.node].out;
    if (f.next_edge >= outs.size() || path.size() >= kMaxCycleLen) {
      if (stack.size() > 1) {
        visited.erase(f.node);
        path.pop_back();
      }
      stack.pop_back();
      continue;
    }
    const EdgeId eid = outs[f.next_edge++];
    const InlinedEdge& e = g.edges()[eid];
    if (e.to == kNoNode || body.count(e.to) == 0) {
      continue;
    }
    if (e.to == loop.head) {
      path.push_back(eid);
      out.push_back(path);
      path.pop_back();
      continue;
    }
    if (visited.count(e.to) != 0) {
      continue;
    }
    visited.insert(e.to);
    path.push_back(eid);
    stack.push_back({e.to, 0});
  }
}

// Whether traversing |eid| out of a semantically-conditional block is
// permitted when the guard condition evaluates to |cond_true|.
bool EdgeAllowed(const InlinedGraph& g, const Block& b, EdgeId eid, bool cond_true) {
  const InlinedEdge& e = g.edges()[eid];
  if (e.kind == InlinedEdge::Kind::kTaken) {
    return cond_true;  // both one- and two-sided: taken requires true
  }
  // Fall-through: one-sided guards may exit at any time; two-sided guards
  // fall through only when false.
  return b.cond.one_sided || !cond_true;
}

bool EvalCond(const BranchCond& c, std::int64_t v) {
  const std::int64_t rhs = c.rhs_imm;  // analysis tracks a single register
  switch (c.cmp) {
    case BranchCond::Cmp::kGe:
      return v >= rhs;
    case BranchCond::Cmp::kLt:
      return v < rhs;
    case BranchCond::Cmp::kEq:
      return v == rhs;
    case BranchCond::Cmp::kNe:
      return v != rhs;
    case BranchCond::Cmp::kNone:
      break;
  }
  return false;
}

// Simulates repeating |cycle| starting with reg=init; returns the number of
// head executions before the cycle becomes inconsistent with the guard, or
// nullopt if it exceeds the cap (unbounded as far as the search can tell).
std::optional<std::uint32_t> SimulateCycle(const InlinedGraph& g, const InlinedLoop& loop,
                                           std::uint8_t reg, std::int64_t init,
                                           const std::vector<EdgeId>& cycle) {
  const std::uint32_t inst = g.nodes()[loop.head].instance;
  std::int64_t v = init;
  std::uint32_t count = 0;
  NodeId cur = loop.head;
  while (count < kMaxIterations) {
    count++;  // the head (and cycle) executes
    bool exited = false;
    for (EdgeId eid : cycle) {
      const InlinedEdge& e = g.edges()[eid];
      if (e.from != cur) {
        return std::nullopt;  // malformed cycle: refuse to bound
      }
      const Block& b = g.BlockOf(e.from);
      // Apply this block's register ops (same stack frame only).
      if (g.nodes()[e.from].instance == inst) {
        for (const RegOp& op : b.reg_ops) {
          if (op.dst != reg) {
            continue;
          }
          switch (op.kind) {
            case RegOp::Kind::kConst:
              v = op.imm;
              break;
            case RegOp::Kind::kAdd:
              v += op.imm;
              break;
            case RegOp::Kind::kMovReg:
              return std::nullopt;  // untracked source: give up
          }
        }
        if (b.cond.HasSemantics() && b.cond.lhs == reg && b.cond.rhs_is_imm) {
          if (!EdgeAllowed(g, b, eid, EvalCond(b.cond, v))) {
            exited = true;
            break;
          }
        }
      }
      cur = e.to;
    }
    if (exited) {
      return count;
    }
    assert(cur == loop.head);
  }
  return std::nullopt;
}

}  // namespace

std::vector<LoopBoundResult> ComputeLoopBounds(InlinedGraph& graph) {
  std::vector<LoopBoundResult> results;
  results.reserve(graph.loops().size());
  for (InlinedLoop& loop : graph.mutable_loops()) {
    LoopBoundResult res;
    const Block& head = graph.BlockOf(loop.head);

    const auto reg = FindGuardReg(graph, loop);
    if (reg.has_value()) {
      const auto init = FindInitValue(graph, loop, *reg);
      if (init.has_value()) {
        std::vector<std::vector<EdgeId>> cycles;
        EnumerateCycles(graph, loop, cycles);
        std::optional<std::uint32_t> worst;
        bool all_ok = !cycles.empty();
        for (const auto& cyc : cycles) {
          const auto n = SimulateCycle(graph, loop, *reg, *init, cyc);
          if (!n.has_value()) {
            all_ok = false;
            break;
          }
          worst = worst ? std::max(*worst, *n) : *n;
        }
        if (all_ok && worst.has_value()) {
          res.bound = *worst;
          res.source = LoopBoundResult::Source::kComputed;
        }
      }
    }
    if (res.bound == 0 && head.loop_bound_annotation != 0) {
      res.bound = head.loop_bound_annotation;
      res.source = LoopBoundResult::Source::kAnnotation;
    }
    if (res.bound == 0 && head.absolute_exec_bound != 0) {
      res.bound = head.absolute_exec_bound;
      res.source = LoopBoundResult::Source::kAbsolute;
    }
    loop.bound = res.bound;
    results.push_back(res);
  }
  return results;
}

}  // namespace pmk
