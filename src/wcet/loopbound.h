// Automatic loop-bound computation (paper Section 5.3).
//
// For each loop, the analysis slices out the register-machine operations that
// feed the loop-controlling branch and runs a bounded search for the maximum
// number of head executions, maximizing over the loop's declared input ranges
// and over the possible cycle shapes through the body. Loops without register
// semantics fall back to manual annotations — the paper's situation for loops
// its tools could not yet bound.

#ifndef SRC_WCET_LOOPBOUND_H_
#define SRC_WCET_LOOPBOUND_H_

#include "src/wcet/cfg.h"

namespace pmk {

struct LoopBoundResult {
  std::uint32_t bound = 0;  // 0 = unknown
  enum class Source : std::uint8_t {
    kUnknown,
    kComputed,    // slice + bounded search
    kAnnotation,  // Block::loop_bound_annotation
    kAbsolute,    // Block::absolute_exec_bound on the head
  } source = Source::kUnknown;
};

// Computes (and stores into graph.mutable_loops()) bounds for every loop.
// Returns one result per loop, aligned with graph.loops().
std::vector<LoopBoundResult> ComputeLoopBounds(InlinedGraph& graph);

}  // namespace pmk

#endif  // SRC_WCET_LOOPBOUND_H_
