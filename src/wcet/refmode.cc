#include "src/wcet/refmode.h"

#include <atomic>

namespace pmk {
namespace wcet {

namespace {
std::atomic<bool> g_reference_mode{false};
}  // namespace

void SetReferenceMode(bool on) { g_reference_mode.store(on, std::memory_order_relaxed); }

bool ReferenceMode() { return g_reference_mode.load(std::memory_order_relaxed); }

}  // namespace wcet
}  // namespace pmk
