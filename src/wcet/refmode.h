// Process-wide reference-mode switch for the WCET analysis pipeline,
// mirroring pmk::hotpath::SetReferenceMode for the simulator hot path.
//
// Reference mode selects the pre-optimisation twin of every layer that was
// overhauled for host speed:
//   - SolveLp/SolveIlp fall back to the dense two-phase tableau simplex
//     (cold-started branch-and-bound, no warm bases),
//   - WcetAnalyzer instances constructed while the mode is active skip all
//     per-entry memoization and re-derive the inlined graph, loop bounds and
//     abstract-cache fixpoint on every call, as the seed implementation did.
//
// Both paths must produce bit-identical WCET bounds, solve statuses, worst
// traces and byte-identical table output; bench/bench_wcet_pipeline.cc and
// tests/wcet_equivalence_test.cc enforce that.  The flag is sampled by
// WcetAnalyzer at construction time and by the solver at each solve, so flip
// it only between pipeline runs, not mid-analysis.

#ifndef SRC_WCET_REFMODE_H_
#define SRC_WCET_REFMODE_H_

namespace pmk {
namespace wcet {

void SetReferenceMode(bool on);
bool ReferenceMode();

}  // namespace wcet
}  // namespace pmk

#endif  // SRC_WCET_REFMODE_H_
