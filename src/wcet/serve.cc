#include "src/wcet/serve.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>

#include "src/engine/wire.h"
#include "src/obs/metrics.h"

namespace pmk::wcet {

namespace {

constexpr std::uint8_t kReplyOk = 0;
constexpr std::uint8_t kReplyError = 1;
constexpr std::size_t kNumEntryPoints = 4;

obs::Counter& RequestCounter() {
  static obs::Counter c("wcet.serve.requests");
  return c;
}
obs::Counter& SharedHitCounter() {
  static obs::Counter c("wcet.serve.shared_hit");
  return c;
}
obs::Counter& EditCounter() {
  static obs::Counter c("wcet.serve.edits");
  return c;
}
obs::Counter& ErrorCounter() {
  static obs::Counter c("wcet.serve.errors");
  return c;
}

std::vector<std::uint8_t> ErrorReply(const std::string& message) {
  ErrorCounter().Inc();
  engine::WireWriter w;
  w.U8(kReplyError);
  w.Str(message);
  return w.Take();
}

}  // namespace

WcetService::WcetService(std::unique_ptr<KernelImage> image, const AnalysisOptions& options)
    : image_(std::move(image)), analyzer_(*image_, options) {}

void WcetService::WriteAnalyzeReply(const EntryResult& res, std::vector<std::uint8_t>& out) {
  engine::WireWriter w;
  w.U8(kReplyOk);
  w.U8(static_cast<std::uint8_t>(res.entry));
  w.U8(static_cast<std::uint8_t>(res.status));
  w.U64(res.wcet);
  w.F64(res.micros);
  w.U64(res.nodes);
  w.U64(res.edges);
  w.U64(res.loops_bounded_auto);
  w.U64(res.loops_bounded_annot);
  w.U64(res.worst_trace.blocks.size());
  out = w.Take();
}

AnalyzeReply WcetService::ParseAnalyzeReply(const std::vector<std::uint8_t>& reply) {
  engine::WireReader r(reply);
  const std::uint8_t status = r.U8();
  if (status != kReplyOk) {
    throw engine::WireError(engine::WireFault::kBadValue, "analyze request failed: " + r.Str());
  }
  AnalyzeReply out;
  out.entry = r.U8();
  out.status = r.U8();
  out.wcet = r.U64();
  out.micros = r.F64();
  out.nodes = r.U64();
  out.edges = r.U64();
  out.loops_bounded_auto = r.U64();
  out.loops_bounded_annot = r.U64();
  out.trace_blocks = r.U64();
  r.ExpectEnd("analyze reply");
  return out;
}

std::vector<std::uint8_t> WcetService::Handle(const std::vector<std::uint8_t>& request) {
  RequestCounter().Inc();
  try {
    return HandleOrThrow(request);
  } catch (const engine::WireError& e) {
    return ErrorReply(e.what());
  } catch (const std::exception& e) {
    return ErrorReply(std::string("internal: ") + e.what());
  }
}

std::vector<std::uint8_t> WcetService::HandleOrThrow(const std::vector<std::uint8_t>& request) {
  engine::WireReader r(request);
  const auto op = static_cast<ServeOp>(r.U8());
  switch (op) {
    case ServeOp::kAnalyze: {
      const std::uint8_t raw = r.U8();
      r.ExpectEnd("analyze request");
      if (raw >= kNumEntryPoints) {
        return ErrorReply("unknown entry point " + std::to_string(raw));
      }
      const auto entry = static_cast<EntryPoint>(raw);
      std::vector<std::uint8_t> reply;
      {
        std::shared_lock<std::shared_mutex> lk(mu_);
        if (analyzer_.Fresh(entry)) {
          SharedHitCounter().Inc();
          WriteAnalyzeReply(analyzer_.Cached(entry), reply);
          return reply;
        }
      }
      // Miss: re-derive under the exclusive lock. Analyze re-probes its
      // digest keys, so losing a race to another upgrader is just a hit.
      std::unique_lock<std::shared_mutex> lk(mu_);
      WriteAnalyzeReply(analyzer_.Analyze(entry), reply);
      return reply;
    }
    case ServeOp::kResponseBound: {
      r.ExpectEnd("response-bound request");
      {
        std::shared_lock<std::shared_mutex> lk(mu_);
        bool all_fresh = true;
        for (std::size_t i = 0; i < kNumEntryPoints; ++i) {
          all_fresh = all_fresh && analyzer_.Fresh(static_cast<EntryPoint>(i));
        }
        if (all_fresh) {
          SharedHitCounter().Inc();
          Cycles longest = 0;
          for (EntryPoint e :
               {EntryPoint::kSyscall, EntryPoint::kUndefined, EntryPoint::kPageFault}) {
            longest = std::max(longest, analyzer_.Cached(e).wcet);
          }
          engine::WireWriter w;
          w.U8(kReplyOk);
          w.U64(longest + analyzer_.Cached(EntryPoint::kInterrupt).wcet);
          return w.Take();
        }
      }
      std::unique_lock<std::shared_mutex> lk(mu_);
      engine::WireWriter w;
      w.U8(kReplyOk);
      w.U64(analyzer_.InterruptResponseBound());
      return w.Take();
    }
    case ServeOp::kPerBlockBounds: {
      r.ExpectEnd("per-block-bounds request");
      // Block-level ceilings come from the immutable cost cache: read-only
      // under any lock state, so the shared lock suffices even mid-edit.
      std::shared_lock<std::shared_mutex> lk(mu_);
      const std::vector<Cycles> bounds = analyzer_.PerBlockBounds();
      engine::WireWriter w;
      w.U8(kReplyOk);
      w.U64(bounds.size());
      for (Cycles c : bounds) {
        w.U64(c);
      }
      return w.Take();
    }
    case ServeOp::kEdit: {
      const BlockId block = r.U32();
      const auto field = static_cast<EditField>(r.U8());
      const std::uint64_t value = r.U64();
      r.ExpectEnd("edit request");
      EditCounter().Inc();
      std::unique_lock<std::shared_mutex> lk(mu_);
      if (block >= image_->prog.num_blocks()) {
        return ErrorReply("block id " + std::to_string(block) + " out of range");
      }
      Block& b = image_->prog.mutable_block(block);
      switch (field) {
        case EditField::kLoopBoundAnnotation:
          b.loop_bound_annotation = static_cast<std::uint32_t>(value);
          break;
        case EditField::kAbsoluteExecBound:
          b.absolute_exec_bound = static_cast<std::uint32_t>(value);
          break;
        case EditField::kIsPreemptionPoint:
          b.is_preemption_point = value != 0;
          break;
        default:
          return ErrorReply("unknown edit field " +
                            std::to_string(static_cast<unsigned>(field)));
      }
      const bool moved = analyzer_.NotifyBlockEdited(block);
      engine::WireWriter w;
      w.U8(kReplyOk);
      w.U8(moved ? 1 : 0);
      return w.Take();
    }
    case ServeOp::kPing: {
      const std::uint64_t nonce = r.U64();
      r.ExpectEnd("ping request");
      engine::WireWriter w;
      w.U8(kReplyOk);
      w.U64(nonce);
      return w.Take();
    }
    case ServeOp::kShutdown: {
      r.ExpectEnd("shutdown request");
      shutdown_.store(true, std::memory_order_release);
      engine::WireWriter w;
      w.U8(kReplyOk);
      return w.Take();
    }
    case ServeOp::kImageInfo: {
      r.ExpectEnd("image-info request");
      // Layout statistics are fixed at image build; no lock needed.
      engine::WireWriter w;
      w.U8(kReplyOk);
      w.U64(image_->prog.num_functions());
      w.U64(image_->prog.num_blocks());
      w.U64(image_->prog.text_bytes());
      return w.Take();
    }
  }
  return ErrorReply("unknown op " + std::to_string(static_cast<unsigned>(op)));
}

}  // namespace pmk::wcet
