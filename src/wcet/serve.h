// Persistent WCET query service: the daemon core behind wcet_tool --serve.
//
// A WcetService owns one mutable kernel image plus an IncrementalWcetAnalyzer
// over it and answers framed requests (engine::FrameType::kWcetQuery /
// kWcetReply, src/engine/wire.h) from many concurrent clients: Analyze one
// entry point, InterruptResponseBound, PerBlockBounds, Ping, Shutdown — and
// the edit-notification path (kEdit) that mutates one block's analysis
// metadata and invalidates precisely the cache entries whose content digests
// moved. Transport is the caller's problem: examples/wcet_tool.cpp runs
// Handle() behind an AF_UNIX socket, tests call it in-process.
//
// Lock discipline over IncrementalWcetAnalyzer's thread-safety contract:
// queries take the shared lock and probe Fresh(); only on a miss do they
// upgrade to the exclusive lock and re-derive (Analyze re-checks, so a racing
// upgrade just hits the refreshed cache). Edits always take the exclusive
// lock. Answers are byte-identical to a one-shot wcet_tool run on the edited
// image — wcet_incremental_test and the CI wcet-serve job diff exactly that.
//
// Request payload: [op u8][operands...]; reply: [status u8][body...] with
// status 0 = ok (body is op-specific) and 1 = error (body is a Str message).
// Malformed requests answer with an error reply; they never crash the
// service (wire faults surface as WireError, same as the journal reader).

#ifndef SRC_WCET_SERVE_H_
#define SRC_WCET_SERVE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/kernel/image.h"
#include "src/wcet/incremental.h"

namespace pmk::wcet {

enum class ServeOp : std::uint8_t {
  kAnalyze = 1,         // [entry u8] -> per-entry result
  kResponseBound = 2,   // [] -> [cycles u64]
  kPerBlockBounds = 3,  // [] -> [count u64][cycles u64]...
  kEdit = 4,            // [block u32][field u8][value u64] -> [moved u8]
  kPing = 5,            // [nonce u64] -> [nonce u64]
  kShutdown = 6,        // [] -> []; shutdown_requested() turns true
  kImageInfo = 7,       // [] -> [functions u64][blocks u64][text_bytes u64]
};

// Block fields a kEdit request may change — exactly the analysis-only
// metadata the Block layout contract allows to move post-layout.
enum class EditField : std::uint8_t {
  kLoopBoundAnnotation = 1,
  kAbsoluteExecBound = 2,
  kIsPreemptionPoint = 3,
};

// Reply body of ServeOp::kAnalyze, mirroring EntryResult's scalar fields
// (the trace itself stays server-side; clients get its length).
struct AnalyzeReply {
  std::uint8_t entry = 0;
  std::uint8_t status = 0;  // SolveStatus
  Cycles wcet = 0;
  double micros = 0;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t loops_bounded_auto = 0;
  std::uint64_t loops_bounded_annot = 0;
  std::uint64_t trace_blocks = 0;
};

class WcetService {
 public:
  WcetService(std::unique_ptr<KernelImage> image, const AnalysisOptions& options);

  // Executes one request payload (the kWcetQuery frame body) and returns the
  // kWcetReply frame body. Thread-safe; never throws on malformed input.
  std::vector<std::uint8_t> Handle(const std::vector<std::uint8_t>& request);

  // True once a kShutdown request was handled; the transport loop polls this.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // Decodes a kAnalyze ok-reply body (shared by wcet_tool --connect and the
  // tests, so client and server can never drift).
  static AnalyzeReply ParseAnalyzeReply(const std::vector<std::uint8_t>& reply);

 private:
  std::vector<std::uint8_t> HandleOrThrow(const std::vector<std::uint8_t>& request);
  void WriteAnalyzeReply(const EntryResult& res, std::vector<std::uint8_t>& out);

  std::unique_ptr<KernelImage> image_;
  IncrementalWcetAnalyzer analyzer_;
  std::shared_mutex mu_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace pmk::wcet

#endif  // SRC_WCET_SERVE_H_
