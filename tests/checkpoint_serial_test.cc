// Checkpoint serialization fidelity and robustness.
//
// Fidelity: a System rebuilt from SystemCheckpoint::Serialize bytes must be
// indistinguishable from an in-process Clone() fork — same cycles, PMU
// counters, cache statistics and IRQ latencies when driven through the
// canonical fault-campaign operations — and the encoding must be canonical
// (serialize . deserialize . serialize is the identity on bytes).
//
// Robustness: the decoder is exposed to journal files and shard pipes, so a
// corrupt image must throw a structured engine::WireError, never crash.
// Every single-bit flip over the framed image and every truncated prefix is
// required to be detected (the frame CRC covers the payload; the header
// fields are individually validated).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/engine/checkpoint.h"
#include "src/engine/serialize.h"
#include "src/engine/wire.h"
#include "src/fault/campaign.h"
#include "src/fault/injector.h"
#include "src/fault/scenario.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

using engine::StateSerializer;
using engine::SystemCheckpoint;
using engine::WireError;
using engine::WireFault;

InjectionPlan PlanAtOrdinal(std::uint64_t ordinal, std::uint32_t line = 5) {
  InjectionPlan plan;
  InjectionAction a;
  a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
  a.at = ordinal;
  a.line = line;
  plan.actions.push_back(a);
  return plan;
}

// Observable outcome of driving an operation to completion.
struct DriveResult {
  Cycles now = 0;
  HwCounters hw;
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::vector<Cycles> irq_latencies;
  std::uint64_t fastpath_hits = 0;
};

DriveResult Drive(OpInstance inst, const InjectionPlan& plan) {
  System& sys = *inst.sys;
  FaultInjector inj(&sys.machine());
  inj.SetPlan(plan);
  sys.kernel().exec().set_fault_hook(&inj);
  for (;;) {
    const KernelExit e = sys.kernel().Syscall(inst.op, inst.cptr, inst.args);
    sys.kernel().CheckInvariants();
    if (e != KernelExit::kPreempted) {
      break;
    }
    for (const InjectionAction& a : plan.actions) {
      for (std::uint32_t i = 0; i < a.burst; ++i) {
        sys.machine().irq().Unmask((a.line + i) % InterruptController::kNumLines);
      }
    }
    if (inst.on_preempted) {
      inst.on_preempted(sys);
    }
  }
  while (sys.machine().irq().AnyPending()) {
    sys.kernel().HandleIrqEntry();
  }
  sys.kernel().CheckInvariants();
  if (inst.check_done) {
    inst.check_done(sys);
  }

  DriveResult r;
  r.now = sys.machine().Now();
  r.hw = sys.machine().counters();
  r.l1i = sys.machine().l1i().stats();
  r.l1d = sys.machine().l1d().stats();
  r.l2 = sys.machine().l2().stats();
  r.irq_latencies = sys.kernel().irq_latencies();
  r.fastpath_hits = sys.kernel().fastpath_hits();
  return r;
}

void ExpectIdentical(const DriveResult& a, const DriveResult& b) {
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.hw.instructions, b.hw.instructions);
  EXPECT_EQ(a.hw.l1i_misses, b.hw.l1i_misses);
  EXPECT_EQ(a.hw.l1d_misses, b.hw.l1d_misses);
  EXPECT_EQ(a.hw.l2_misses, b.hw.l2_misses);
  EXPECT_EQ(a.hw.branches, b.hw.branches);
  EXPECT_EQ(a.hw.branch_mispredicts, b.hw.branch_mispredicts);
  EXPECT_EQ(a.hw.mem_stall_cycles, b.hw.mem_stall_cycles);
  EXPECT_EQ(a.l1i.accesses, b.l1i.accesses);
  EXPECT_EQ(a.l1d.accesses, b.l1d.accesses);
  EXPECT_EQ(a.l2.accesses, b.l2.accesses);
  EXPECT_EQ(a.irq_latencies, b.irq_latencies);
  EXPECT_EQ(a.fastpath_hits, b.fastpath_hits);
}

TEST(CheckpointSerialTest, RoundTripIsCanonicalOnCanonicalOps) {
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    OpInstance inst = factory();
    const std::vector<std::uint8_t> first = StateSerializer::SerializeSystem(*inst.sys);
    const std::unique_ptr<System> rebuilt = StateSerializer::DeserializeSystem(first);
    EXPECT_EQ(StateSerializer::SerializeSystem(*rebuilt), first);
  }
}

TEST(CheckpointSerialTest, DeserializedSystemDrivesIdentically) {
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    const InjectionPlan plan = PlanAtOrdinal(2);

    OpInstance fresh = factory();
    OpInstance rebuilt = factory();
    rebuilt.sys = StateSerializer::DeserializeSystem(
        StateSerializer::SerializeSystem(*rebuilt.sys));
    ExpectIdentical(Drive(std::move(fresh), plan), Drive(std::move(rebuilt), plan));
  }
}

TEST(CheckpointSerialTest, RoundTripMidScenarioAfterPreemptedExit) {
  // Serialize in the thick of a scenario: actor in kRestart, a serviced IRQ
  // latency on record, warm caches, masked lines — the state a shard worker
  // would actually ship.
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    OpInstance inst = factory();
    System& sys = *inst.sys;
    FaultInjector inj(&sys.machine());
    inj.SetPlan(PlanAtOrdinal(0));
    sys.kernel().exec().set_fault_hook(&inj);
    const KernelExit e = sys.kernel().Syscall(inst.op, inst.cptr, inst.args);
    sys.kernel().exec().set_fault_hook(nullptr);
    ASSERT_EQ(e, KernelExit::kPreempted) << "op exposed no preemption point";
    if (inst.on_preempted) {
      inst.on_preempted(sys);
    }

    const std::vector<std::uint8_t> bytes = StateSerializer::SerializeSystem(sys);
    const std::unique_ptr<System> rebuilt = StateSerializer::DeserializeSystem(bytes);
    EXPECT_EQ(StateSerializer::SerializeSystem(*rebuilt), bytes);

    const auto finish = [&inst](System& s) {
      while (s.kernel().Syscall(inst.op, inst.cptr, inst.args) == KernelExit::kPreempted) {
      }
      while (s.machine().irq().AnyPending()) {
        s.kernel().HandleIrqEntry();
      }
      s.kernel().CheckInvariants();
      DriveResult r;
      r.now = s.machine().Now();
      r.hw = s.machine().counters();
      r.irq_latencies = s.kernel().irq_latencies();
      r.fastpath_hits = s.kernel().fastpath_hits();
      return r;
    };
    ExpectIdentical(finish(sys), finish(*rebuilt));
  }
}

TEST(CheckpointSerialTest, CheckpointFramedRoundTrip) {
  OpInstance inst = MakeEpDeleteCase()();
  const SystemCheckpoint ckpt(*inst.sys);
  const std::vector<std::uint8_t> image = ckpt.Serialize();
  const SystemCheckpoint rebuilt = SystemCheckpoint::Deserialize(image);
  EXPECT_EQ(rebuilt.Serialize(), image);

  // Forks of the deserialized checkpoint are real, runnable systems.
  const std::unique_ptr<System> fork = rebuilt.Fork();
  fork->kernel().CheckInvariants();
  EXPECT_EQ(fork->machine().Now(), inst.sys->machine().Now());
}

TEST(CheckpointSerialTest, EveryBitFlipThrowsWireError) {
  // The framed image is CRC-protected end to end: any single flipped bit must
  // surface as a structured WireError (bad magic, bad length, bad type or bad
  // checksum), never as a crash, hang or silently-different System. Flipping
  // every bit of a full image is quadratic in its size, so stride across the
  // payload but cover the header densely.
  OpInstance inst = MakeRetypeCase()();
  const SystemCheckpoint ckpt(*inst.sys);
  const std::vector<std::uint8_t> image = ckpt.Serialize();
  ASSERT_GT(image.size(), engine::kFrameHeaderBytes);

  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < engine::kFrameHeaderBytes; ++i) {
    positions.push_back(i);  // header: every byte
  }
  for (std::size_t i = engine::kFrameHeaderBytes; i < image.size(); i += 97) {
    positions.push_back(i);  // payload: strided sample, CRC catches them all
  }
  positions.push_back(image.size() - 1);

  for (const std::size_t pos : positions) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = image;
      corrupt[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(SystemCheckpoint::Deserialize(corrupt), WireError)
          << "byte " << pos << " bit " << bit << " went undetected";
    }
  }
}

TEST(CheckpointSerialTest, EveryTruncationThrowsWireError) {
  OpInstance inst = MakeBadgedAbortCase()();
  const SystemCheckpoint ckpt(*inst.sys);
  const std::vector<std::uint8_t> image = ckpt.Serialize();

  // Sampled prefix lengths, plus the boundary cases around the header.
  std::vector<std::size_t> lengths = {0, 1, 4, 5, engine::kFrameHeaderBytes - 1,
                                      engine::kFrameHeaderBytes, image.size() - 1};
  for (std::size_t len = 0; len < image.size(); len += 131) {
    lengths.push_back(len);
  }
  for (const std::size_t len : lengths) {
    const std::vector<std::uint8_t> prefix(image.begin(), image.begin() + len);
    EXPECT_THROW(SystemCheckpoint::Deserialize(prefix), WireError) << "prefix " << len;
  }
}

TEST(CheckpointSerialTest, TruncatedRawPayloadThrowsNotCrashes) {
  // The unframed payload (no CRC) must still fail structurally on
  // truncation: bounds-checked reads, not overruns.
  OpInstance inst = MakeEpDeleteCase()();
  const std::vector<std::uint8_t> payload = StateSerializer::SerializeSystem(*inst.sys);
  for (std::size_t len = 0; len < payload.size(); len += 61) {
    try {
      StateSerializer::DeserializeSystem(payload.data(), len);
      FAIL() << "truncated payload of " << len << " bytes decoded";
    } catch (const WireError&) {
      // expected
    }
  }
}

TEST(CheckpointSerialTest, VersionAndTypeMismatchesAreStructured) {
  OpInstance inst = MakeEpDeleteCase()();
  std::vector<std::uint8_t> payload = StateSerializer::SerializeSystem(*inst.sys);

  // Bump the leading version word.
  payload[0] ^= 0xFF;
  try {
    StateSerializer::DeserializeSystem(payload);
    FAIL() << "wrong version accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.fault(), WireFault::kBadVersion);
  }
  payload[0] ^= 0xFF;

  // A frame of the wrong type is rejected before payload interpretation.
  std::vector<std::uint8_t> frame;
  engine::AppendFrame(frame, engine::FrameType::kTaskResult, payload);
  try {
    SystemCheckpoint::Deserialize(frame);
    FAIL() << "wrong frame type accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.fault(), WireFault::kBadValue);
  }
}

TEST(CheckpointSerialTest, KernelImageDigestTracksConfig) {
  const KernelConfig after = KernelConfig::After();
  const KernelConfig before = KernelConfig::Before();
  EXPECT_EQ(StateSerializer::KernelImageDigest(after), StateSerializer::KernelImageDigest(after));
  EXPECT_NE(StateSerializer::KernelImageDigest(after), StateSerializer::KernelImageDigest(before));

  KernelConfig tweaked = after;
  tweaked.ipc_fastpath = !tweaked.ipc_fastpath;
  EXPECT_NE(StateSerializer::KernelImageDigest(after), StateSerializer::KernelImageDigest(tweaked));
}

TEST(CheckpointSerialTest, HistogramRoundTripsSparsely) {
  LatencyHistogram h;
  h.Record(1);
  h.Record(1000, 3);
  h.Record(123456789);
  engine::WireWriter w;
  StateSerializer::WriteHistogram(w, h);
  engine::WireReader r(w.bytes().data(), w.bytes().size());
  const LatencyHistogram back = StateSerializer::ReadHistogram(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_EQ(back.Percentile(50), h.Percentile(50));
  EXPECT_EQ(back.Percentile(99), h.Percentile(99));
}

}  // namespace
}  // namespace pmk
