// Tests for the Chrome trace_event JSON exporter: a golden rendering of a
// synthetic event stream, escaping, async-span id pairing, and structural
// validity (balanced JSON, paired B/E durations) of a trace captured from a
// real charged kernel run.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/chrome_trace.h"
#include "src/obs/trace_sink.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

// 1 MHz clock: one modelled cycle = 1 us, so golden timestamps are integral.
ClockSpec TestClock() {
  ClockSpec clk;
  clk.hz = 1'000'000;
  return clk;
}

TraceEvent Ev(TraceEventKind kind, Cycles cycle, const char* name = nullptr,
              std::uint32_t id = 0, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
              std::uint64_t arg2 = 0) {
  TraceEvent e;
  e.kind = kind;
  e.cycle = cycle;
  e.name = name;
  e.id = id;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg2 = arg2;
  return e;
}

// Counts occurrences of |needle| in |s|.
int Count(const std::string& s, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    n++;
  }
  return n;
}

// Checks brace/bracket balance ignoring string literals.
bool JsonBalanced(const std::string& s) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        i++;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        braces++;
        break;
      case '}':
        braces--;
        break;
      case '[':
        brackets++;
        break;
      case ']':
        brackets--;
        break;
      default:
        break;
    }
    if (braces < 0 || brackets < 0) {
      return false;
    }
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(ChromeTraceTest, GoldenRenderingOfSyntheticStream) {
  ChromeTraceWriter w(TestClock());
  w.OnEvent(Ev(TraceEventKind::kKernelEntry, 10, "syscall"));
  w.OnEvent(Ev(TraceEventKind::kSyscallOp, 11, "call", 3, /*cptr=*/5));
  w.OnEvent(Ev(TraceEventKind::kBlockCost, 20, "fastpath.entry", 2, /*cycles=*/6,
               /*l1i=*/1, /*l1d=*/2));
  w.OnEvent(Ev(TraceEventKind::kIrqAssert, 25, nullptr, 3));
  w.OnEvent(Ev(TraceEventKind::kIrqDeliver, 40, nullptr, 3, /*assert=*/25, /*lat=*/15));
  w.OnEvent(Ev(TraceEventKind::kKernelExit, 50, "syscall"));
  w.OnEvent(Ev(TraceEventKind::kUserCompute, 60, nullptr, 0, /*burst=*/5, 0x1000));
  w.OnEvent(Ev(TraceEventKind::kThreadSwitch, 61, nullptr, 1, 0, 0));

  std::ostringstream os;
  w.Write(os);

  const std::string expected =
      "{\"traceEvents\":[\n"
      "  {\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"name\":\"pmk (modelled ARM1136)\"}},\n"
      "  {\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"name\":\"kernel\"}},\n"
      "  {\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,"
      "\"pid\":0,\"tid\":100,\"args\":{\"name\":\"thread 0\"}},\n"
      "  {\"name\":\"syscall\",\"cat\":\"kernel\",\"ph\":\"B\",\"ts\":10.000,"
      "\"pid\":0,\"tid\":0},\n"
      "  {\"name\":\"call\",\"cat\":\"syscall\",\"ph\":\"i\",\"ts\":11.000,"
      "\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"cptr\":5}},\n"
      "  {\"name\":\"fastpath.entry\",\"cat\":\"block\",\"ph\":\"X\",\"ts\":14.000,"
      "\"pid\":0,\"tid\":0,\"dur\":6.000,\"args\":{\"cycles\":6,\"l1i_miss\":1,"
      "\"l1d_miss\":2}},\n"
      "  {\"name\":\"irq3\",\"cat\":\"irq\",\"ph\":\"b\",\"ts\":25.000,"
      "\"pid\":0,\"tid\":0,\"id\":\"1\"},\n"
      "  {\"name\":\"irq3\",\"cat\":\"irq\",\"ph\":\"e\",\"ts\":40.000,"
      "\"pid\":0,\"tid\":0,\"id\":\"1\",\"args\":{\"latency_cycles\":15}},\n"
      "  {\"name\":\"syscall\",\"cat\":\"kernel\",\"ph\":\"E\",\"ts\":50.000,"
      "\"pid\":0,\"tid\":0},\n"
      "  {\"name\":\"compute\",\"cat\":\"user\",\"ph\":\"X\",\"ts\":55.000,"
      "\"pid\":0,\"tid\":100,\"dur\":5.000},\n"
      "  {\"name\":\"switch\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":61.000,"
      "\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"thread\":1}}\n"
      "],\"displayTimeUnit\":\"ns\"}\n";
  EXPECT_EQ(os.str(), expected);
  EXPECT_TRUE(JsonBalanced(os.str()));
}

TEST(ChromeTraceTest, DeliverWithoutAssertSynthesizesTheBegin) {
  // An assertion that predates sink attachment still renders as a full span,
  // reconstructed from the assert cycle carried by the deliver event.
  ChromeTraceWriter w(TestClock());
  w.OnEvent(Ev(TraceEventKind::kIrqDeliver, 90, nullptr, 7, /*assert=*/70, /*lat=*/20));
  std::ostringstream os;
  w.Write(os);
  const std::string out = os.str();
  EXPECT_EQ(Count(out, "\"ph\":\"b\""), 1);
  EXPECT_EQ(Count(out, "\"ph\":\"e\""), 1);
  EXPECT_NE(out.find("\"ph\":\"b\",\"ts\":70.000"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"e\",\"ts\":90.000"), std::string::npos);
  EXPECT_TRUE(JsonBalanced(out));
}

TEST(ChromeTraceTest, EachAssertionGetsAFreshSpanId) {
  ChromeTraceWriter w(TestClock());
  w.OnEvent(Ev(TraceEventKind::kIrqAssert, 10, nullptr, 4));
  w.OnEvent(Ev(TraceEventKind::kIrqDeliver, 20, nullptr, 4, 10, 10));
  w.OnEvent(Ev(TraceEventKind::kIrqAssert, 30, nullptr, 4));
  w.OnEvent(Ev(TraceEventKind::kIrqDeliver, 45, nullptr, 4, 30, 15));
  std::ostringstream os;
  w.Write(os);
  const std::string out = os.str();
  EXPECT_EQ(Count(out, "\"id\":\"1\""), 2);  // first span: b + e
  EXPECT_EQ(Count(out, "\"id\":\"2\""), 2);  // second span: b + e
}

TEST(ChromeTraceTest, EscapesSpecialCharactersInNames) {
  ChromeTraceWriter w(TestClock());
  w.OnEvent(Ev(TraceEventKind::kKernelEntry, 1, "weird\"name\\with\nstuff"));
  w.OnEvent(Ev(TraceEventKind::kKernelExit, 2, "weird\"name\\with\nstuff"));
  std::ostringstream os;
  w.Write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
  EXPECT_TRUE(JsonBalanced(out));
}

TEST(ChromeTraceTest, IncludeBlocksToggleDropsBlockEvents) {
  ChromeTraceWriter w(TestClock());
  w.set_include_blocks(false);
  w.OnEvent(Ev(TraceEventKind::kKernelEntry, 1, "irq"));
  w.OnEvent(Ev(TraceEventKind::kBlockCost, 5, "blk", 0, 3, 0, 0));
  w.OnEvent(Ev(TraceEventKind::kKernelExit, 9, "irq"));
  std::ostringstream os;
  w.Write(os);
  EXPECT_EQ(Count(os.str(), "\"cat\":\"block\""), 0);
  EXPECT_EQ(Count(os.str(), "\"ph\":\"B\""), 1);
}

TEST(ChromeTraceTest, RealKernelRunProducesBalancedPairedJson) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  ChromeTraceWriter w(ClockSpec{});
  sys.AttachTraceSink(&w);
  SyscallArgs args;
  args.msg_len = 2;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  sys.AttachTraceSink(nullptr);

  std::ostringstream os;
  w.Write(os);
  const std::string out = os.str();
  EXPECT_TRUE(JsonBalanced(out));
  EXPECT_GT(Count(out, "\"ph\":\"B\""), 0);
  EXPECT_EQ(Count(out, "\"ph\":\"B\""), Count(out, "\"ph\":\"E\""));
  EXPECT_GT(Count(out, "\"ph\":\"X\""), 0);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(ChromeTraceTest, WriteFileMatchesStreamOutput) {
  ChromeTraceWriter w(TestClock());
  w.OnEvent(Ev(TraceEventKind::kKernelEntry, 3, "irq"));
  w.OnEvent(Ev(TraceEventKind::kKernelExit, 8, "irq"));

  const std::string path = ::testing::TempDir() + "/chrome_trace_test.trace.json";
  ASSERT_TRUE(w.WriteFile(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream file_contents;
  file_contents << f.rdbuf();

  std::ostringstream direct;
  w.Write(direct);
  EXPECT_EQ(file_contents.str(), direct.str());

  EXPECT_FALSE(w.WriteFile("/nonexistent-dir-zzz/x.json"));
}

}  // namespace
}  // namespace pmk
