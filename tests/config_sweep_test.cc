// Configuration-sweep tests: every combination of the paper's switches must
// produce a well-formed kernel image, run the core workloads against the
// executor's CFG validation, hold its invariants, and yield a solvable,
// sound WCET analysis.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

struct Sweep {
  SchedulerKind sched;
  bool bitmap;
  VSpaceKind vspace;
  bool preempt;  // all three preemption families together
  bool fastpath;
};

std::string SweepName(const ::testing::TestParamInfo<Sweep>& info) {
  const Sweep& s = info.param;
  std::string n = s.sched == SchedulerKind::kLazy ? "Lazy" : "Benno";
  n += s.bitmap ? "Bitmap" : "NoBitmap";
  n += s.vspace == VSpaceKind::kAsid ? "Asid" : "Shadow";
  n += s.preempt ? "Preempt" : "Atomic";
  n += s.fastpath ? "Fast" : "Slow";
  return n;
}

KernelConfig MakeConfig(const Sweep& s) {
  KernelConfig kc;
  kc.scheduler = s.sched;
  kc.scheduler_bitmap = s.bitmap;
  kc.vspace = s.vspace;
  kc.preemptible_clearing = s.preempt;
  kc.preemptible_deletion = s.preempt;
  kc.preemptible_badged_abort = s.preempt;
  kc.ipc_fastpath = s.fastpath;
  return kc;
}

class ConfigSweepTest : public ::testing::TestWithParam<Sweep> {};

TEST_P(ConfigSweepTest, ImageBuildsAndWorkloadsRun) {
  const KernelConfig kc = MakeConfig(GetParam());
  System sys(kc, EvalMachine(false));

  // IPC round trip.
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs call;
  call.msg_len = 3;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ep_cptr, call), KernelExit::kDone);
  ASSERT_EQ(sys.kernel().current(), server);
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{}), KernelExit::kDone);
  sys.kernel().CheckInvariants();

  // Retype + delete + revoke.
  sys.kernel().DirectSetCurrent(client);
  const std::uint32_t ut_cptr = sys.AddUntyped(16);
  SyscallArgs mk;
  mk.label = InvLabel::kUntypedRetype;
  mk.obj_type = ObjType::kEndpoint;
  mk.dest_index = 90;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, mk), KernelExit::kDone);
  EXPECT_EQ(client->last_error, KError::kOk);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  SyscallArgs del;
  del.label = InvLabel::kCNodeDelete;
  del.arg0 = 90;
  while (sys.kernel().Syscall(SysOp::kCall, root_cptr, del) == KernelExit::kPreempted) {
  }
  EXPECT_TRUE(sys.root()->slots[90].IsNull());
  sys.kernel().CheckInvariants();

  // Interrupt delivery.
  EndpointObj* irq_ep = nullptr;
  sys.AddEndpoint(&irq_ep);
  TcbObj* handler = sys.AddThread(200);
  sys.kernel().DirectBlockOnRecv(handler, irq_ep);
  sys.kernel().DirectBindIrq(2, irq_ep);
  sys.machine().irq().Assert(2, sys.machine().Now());
  ASSERT_EQ(sys.kernel().HandleIrqEntry(), KernelExit::kDone);
  EXPECT_EQ(handler->state, ThreadState::kRunning);
  sys.kernel().CheckInvariants();
}

TEST_P(ConfigSweepTest, AnalysisSolvesAndBoundsObserved) {
  const KernelConfig kc = MakeConfig(GetParam());
  System sys(kc, EvalMachine(false));
  WcetAnalyzer an(sys.kernel().image(), AnalysisOptions{});
  Cycles sys_wcet = 0;
  for (const auto e : {EntryPoint::kSyscall, EntryPoint::kUndefined, EntryPoint::kPageFault,
                       EntryPoint::kInterrupt}) {
    const EntryResult r = an.Analyze(e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << EntryPointName(e);
    ASSERT_GT(r.wcet, 0u);
    if (e == EntryPoint::kSyscall) {
      sys_wcet = r.wcet;
    }
  }
  auto w = sys.BuildWorstCaseIpc();
  sys.machine().PolluteCaches();
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
  EXPECT_LE(sys.machine().Now() - t0, sys_wcet);
}

TEST(DesignInteractionTest, ShadowTablesWithoutPreemptionAreCatastrophic) {
  // The design interaction behind Section 3.6: eager shadow-page-table
  // deletion is only viable WITH preemption points. Without them, a revoke
  // tearing down address spaces is a multi-second non-preemptible blackout —
  // which is why the original (before) kernel used lazy ASID deletion.
  KernelConfig atomic_shadow = KernelConfig::After();
  atomic_shadow.preemptible_clearing = false;
  atomic_shadow.preemptible_deletion = false;
  atomic_shadow.preemptible_badged_abort = false;
  const auto img = BuildKernelImage(atomic_shadow);
  WcetAnalyzer an(*img, AnalysisOptions{});
  const EntryResult r = an.Analyze(EntryPoint::kSyscall);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Billions of cycles: revoke(256) x pd_delete(3840) x pt_delete(256).
  EXPECT_GT(r.wcet, 1'000'000'000u);
  // The same kernel with preemption points is five orders of magnitude
  // better; the before-kernel's lazy ASID deletion avoided this without
  // preemption, at the cost of the ASID pathologies.
  const auto after = BuildKernelImage(KernelConfig::After());
  WcetAnalyzer an_after(*after, AnalysisOptions{});
  EXPECT_LT(an_after.Analyze(EntryPoint::kSyscall).wcet, r.wcet / 100'000);
  const auto before = BuildKernelImage(KernelConfig::Before());
  WcetAnalyzer an_before(*before, AnalysisOptions{});
  EXPECT_LT(an_before.Analyze(EntryPoint::kSyscall).wcet, r.wcet / 1'000);
}

std::vector<Sweep> AllSweeps() {
  std::vector<Sweep> out;
  for (const auto sched : {SchedulerKind::kLazy, SchedulerKind::kBenno}) {
    for (const bool bitmap : {false, true}) {
      for (const auto vs : {VSpaceKind::kAsid, VSpaceKind::kShadow}) {
        for (const bool preempt : {false, true}) {
          for (const bool fast : {false, true}) {
            out.push_back({sched, bitmap, vs, preempt, fast});
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigSweepTest, ::testing::ValuesIn(AllSweeps()),
                         SweepName);

}  // namespace
}  // namespace pmk
