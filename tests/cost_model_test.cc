// Unit tests for the conservative cost model and loop-bound analysis on
// hand-built synthetic programs where the exact expected numbers are known.

#include <gtest/gtest.h>

#include "src/wcet/cost.h"
#include "src/wcet/ipet.h"
#include "src/wcet/loopbound.h"

namespace pmk {
namespace {

// A synthetic program builder mirroring the shapes the analysis must handle.
struct Synth {
  Program prog;
  FuncId fn = kNoFunc;

  explicit Synth(const char* name = "synth") { fn = prog.AddFunction(name); }

  BlockId B(const char* name, std::uint32_t instr, bool ret = false) {
    Block b;
    b.name = name;
    b.instr_count = instr;
    b.is_return = ret;
    return prog.AddBlock(fn, b);
  }
};

TEST(CostModelSynthTest, StraightLineCostIsExact) {
  // One block: 8 instructions (one 32 B line), no data, return branch.
  Synth s2;
  const BlockId b2 = s2.B("only", 8, true);
  s2.prog.mutable_block(b2).is_path_end = true;
  s2.prog.Layout();
  InlinedGraph g2(s2.prog, s2.fn);
  ComputeLoopBounds(g2);
  CostModelOptions opts;
  const CostResult costs = ComputeNodeCosts(g2, opts);
  // 8 instr + 1 cold I-line miss (60) + return branch (5).
  EXPECT_EQ(costs.node_costs[g2.entry_node()], 8u + 60u + 5u);
}

TEST(CostModelSynthTest, GraphRequiresAPathEnd) {
  Synth s;
  s.B("only", 8, /*ret=*/true);  // no is_path_end flag
  s.prog.Layout();
  EXPECT_THROW(InlinedGraph(s.prog, s.fn), std::logic_error);
}

TEST(CostModelSynthTest, SecondBlockInSameLineHits) {
  Synth s;
  const BlockId a = s.B("a", 2);
  const BlockId b = s.B("b", 2, true);
  s.prog.mutable_block(b).is_path_end = true;
  s.prog.AddEdge(a, b);
  s.prog.Layout();
  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions opts;
  const CostResult costs = ComputeNodeCosts(g, opts);
  // Block a: 2 instr + one line miss. Block b: same line, must-hit: only
  // 2 instr + return branch.
  EXPECT_EQ(costs.node_costs[0], 2u + 60u);
  EXPECT_EQ(costs.node_costs[1], 2u + 5u);
}

// Loop fixture: entry(r0=N) -> loop(self; rdec; guard) -> exit(ret).
struct LoopSynth : Synth {
  BlockId entry;
  BlockId loop;
  BlockId exit;

  explicit LoopSynth(std::int64_t n, bool one_sided = false) {
    entry = B("entry", 4);
    prog.mutable_block(entry).reg_ops.push_back({RegOp::Kind::kConst, 0, 0, n});
    loop = B("loop", 64);  // 2 I-lines of body
    Block& lb = prog.mutable_block(loop);
    lb.reg_ops.push_back({RegOp::Kind::kAdd, 0, 0, -1});
    lb.cond.cmp = BranchCond::Cmp::kGe;
    lb.cond.lhs = 0;
    lb.cond.rhs_imm = 1;
    lb.cond.one_sided = one_sided;
    exit = B("exit", 2, true);
    prog.mutable_block(exit).is_path_end = true;
    prog.AddEdge(loop, exit);  // fall
    prog.AddEdge(loop, loop);  // taken
    prog.AddEdge(entry, loop);
    prog.Layout();
  }
};

TEST(LoopBoundSynthTest, CounterLoopBoundMatchesInit) {
  LoopSynth s(7);
  InlinedGraph g(s.prog, s.fn);
  const auto res = ComputeLoopBounds(g);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].bound, 7u);
  EXPECT_EQ(res[0].source, LoopBoundResult::Source::kComputed);
}

TEST(LoopBoundSynthTest, LoopInputRangeOverridesConst) {
  LoopSynth s(7);
  s.prog.mutable_block(s.loop).loop_inputs.push_back({0, 0, 100});
  InlinedGraph g(s.prog, s.fn);
  const auto res = ComputeLoopBounds(g);
  EXPECT_EQ(res[0].bound, 100u);  // maximized over the declared range
}

TEST(LoopBoundSynthTest, AnnotationFallbackWhenNoSemantics) {
  Synth s;
  const BlockId entry = s.B("entry", 4);
  const BlockId loop = s.B("loop", 4);
  const BlockId exit = s.B("exit", 2, true);
  s.prog.mutable_block(exit).is_path_end = true;
  s.prog.mutable_block(loop).loop_bound_annotation = 12;
  s.prog.AddEdge(entry, loop);
  s.prog.AddEdge(loop, exit);
  s.prog.AddEdge(loop, loop);
  s.prog.Layout();
  InlinedGraph g(s.prog, s.fn);
  const auto res = ComputeLoopBounds(g);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].bound, 12u);
  EXPECT_EQ(res[0].source, LoopBoundResult::Source::kAnnotation);
}

TEST(LoopBoundSynthTest, IpetUsesTheBound) {
  LoopSynth s(7);
  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  const IpetResult r = RunIpet(g, costs, iopts, {});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Loop head runs exactly 7 times on the worst (only) path.
  EXPECT_EQ(r.node_counts[1], 7u);
}

TEST(PersistenceSynthTest, LoopBodyLinesChargedOnce) {
  LoopSynth s(10);
  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  const IpetResult r = RunIpet(g, costs, iopts, {});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Body: 64 instr (256 B = up to 9 lines) + conditional branch each
  // iteration; its I-lines miss once (persistence: charged on the entry
  // edge), not per iteration.
  const Cycles per_iter = 64 + 5;
  EXPECT_LT(r.wcet, 4 + 60 + 10 * per_iter + 9 * 60 + 2 + 5 + 60);
  EXPECT_GE(r.wcet, 10 * per_iter);
  // Without persistence the body lines would cost ~8x60 every iteration.
  EXPECT_LT(r.wcet, 10 * (per_iter + 8 * 60) / 2);
}

TEST(PersistenceSynthTest, ConflictingLinesStayPerIteration) {
  // Two blocks in one loop whose lines collide in the direct-mapped model:
  // neither is persistent, so both miss every iteration.
  Synth s;
  const BlockId entry = s.B("entry", 4);
  s.prog.mutable_block(entry).reg_ops.push_back({RegOp::Kind::kConst, 0, 0, 8});
  const BlockId head = s.B("head", 4);
  {
    Block& hb = s.prog.mutable_block(head);
    hb.reg_ops.push_back({RegOp::Kind::kAdd, 0, 0, -1});
    hb.cond.cmp = BranchCond::Cmp::kGe;
    hb.cond.lhs = 0;
    hb.cond.rhs_imm = 1;
    // Conflicting global accesses: two symbols one way-size apart.
  }
  const BlockId exit = s.B("exit", 2, true);
  s.prog.mutable_block(exit).is_path_end = true;
  const SymId sym_a = s.prog.AddSymbol("a", 4096 + 64);
  {
    StaticAccess a;
    a.region = StaticAccess::Region::kGlobal;
    a.symbol = sym_a;
    a.offset = 0;
    s.prog.mutable_block(head).static_accesses.push_back(a);
    StaticAccess b;
    b.region = StaticAccess::Region::kGlobal;
    b.symbol = sym_a;
    b.offset = 4096;  // same set in a 4 KiB direct-mapped model
    s.prog.mutable_block(head).static_accesses.push_back(b);
  }
  s.prog.AddEdge(entry, head);
  s.prog.AddEdge(head, exit);
  s.prog.AddEdge(head, head);
  s.prog.Layout();

  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  // The head pays both conflicting data misses on every execution.
  EXPECT_GE(costs.node_costs[head], 4u + 2 * 60u);
}

TEST(TraceCostSynthTest, MatchesIpetOnTheOnlyPath) {
  LoopSynth s(5);
  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  const IpetResult r = RunIpet(g, costs, iopts, {});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  Trace t;
  t.blocks.push_back(s.entry);
  for (int i = 0; i < 5; ++i) {
    t.blocks.push_back(s.loop);
  }
  t.blocks.push_back(s.exit);
  EXPECT_EQ(EvaluateTraceCost(s.prog, t, copts), r.wcet);
}

TEST(CostModelSynthTest, L2PinnedRegionCapsAtL2Latency) {
  Synth s;
  const BlockId b = s.B("only", 8, true);
  s.prog.mutable_block(b).is_path_end = true;
  s.prog.Layout();
  InlinedGraph g(s.prog, s.fn);
  ComputeLoopBounds(g);
  CostModelOptions opts;
  opts.l2_enabled = true;
  opts.l2_kernel_pinned = true;
  opts.l2_pinned_lo = Program::kTextBase;
  opts.l2_pinned_hi = Program::kTextBase + 4096;
  const CostResult costs = ComputeNodeCosts(g, opts);
  // 8 instr + one L2-hit miss (26) + return branch (5).
  EXPECT_EQ(costs.node_costs[g.entry_node()], 8u + 26u + 5u);
}

}  // namespace
}  // namespace pmk
