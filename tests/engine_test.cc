// Campaign engine: job-pool scheduling and the determinism contract.
//
// The engine's promise is that worker count is invisible in every output:
// RunJobs/ParallelMap collect by ordinal, the sweeps and campaign modes
// derive each run's inputs purely from its index, and checkpoint forking
// changes only where the start state comes from. These tests pin the promise
// at each layer — pool, sweep, campaign — plus the pool's error contract.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/engine/job_pool.h"
#include "src/fault/campaign.h"
#include "src/sim/rng.h"

namespace pmk {
namespace {

TEST(JobPoolTest, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 4u, 16u}) {
    std::vector<std::atomic<int>> hits(57);
    engine::RunJobs(hits.size(), jobs, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at jobs=" << jobs;
    }
  }
}

TEST(JobPoolTest, ParallelMapCollectsInOrdinalOrder) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial = engine::ParallelMap<std::size_t>(100, 1, square);
  const auto threaded = engine::ParallelMap<std::size_t>(100, 7, square);
  ASSERT_EQ(serial.size(), 100u);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial[9], 81u);
}

TEST(JobPoolTest, MoreJobsThanItemsIsFine) {
  const auto r = engine::ParallelMap<std::size_t>(3, 16, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(r, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(JobPoolTest, ZeroItemsIsANoOp) {
  engine::RunJobs(0, 4, [](std::size_t) { FAIL() << "no job should run"; });
  EXPECT_TRUE(engine::ParallelMap<int>(0, 4, [](std::size_t) { return 1; }).empty());
}

TEST(JobPoolTest, LowestFailingIndexWins) {
  // Several jobs throw; the pool must rethrow the lowest ordinal's exception
  // so failure reports are independent of thread interleaving.
  for (const unsigned jobs : {1u, 4u}) {
    try {
      engine::RunJobs(64, jobs, [](std::size_t i) {
        if (i % 2 == 1) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 1") << "jobs=" << jobs;
    }
  }
}

TEST(SplitMix64Test, SplitStreamsAreDisjointAndDeterministic) {
  const SplitMix64 base(42);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 64; ++s) {
    SplitMix64 a = base.Split(s);
    SplitMix64 b = base.Split(s);
    EXPECT_EQ(a.Next(), b.Next()) << "stream " << s;
    firsts.insert(base.Split(s).Next());
  }
  // All 64 streams start differently, and splitting does not perturb the
  // parent (Split is const).
  EXPECT_EQ(firsts.size(), 64u);
  SplitMix64 p1(42);
  SplitMix64 p2(42);
  (void)p2.Split(7);
  EXPECT_EQ(p1.Next(), p2.Next());
}

std::string Signature(const SweepResult& res) {
  std::ostringstream os;
  const auto rec = [&os](const RunRecord& r) {
    os << r.plan << '|' << r.completed << r.invariant_violation << r.exec_error << r.kernel_error
       << r.restart_overrun << '|' << r.restarts << '|' << r.actions_fired << '|'
       << r.lines_asserted << '|' << r.preempt_points << '|' << r.max_irq_latency << '|'
       << r.detail << '\n';
  };
  os << res.preempt_points << '\n';
  rec(res.dry_run);
  for (const RunRecord& r : res.runs) {
    rec(r);
  }
  return os.str();
}

TEST(EngineSweepTest, CheckpointedSweepMatchesBootPerRunAtAnyJobCount) {
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    const SweepOptions baseline;  // boot-per-run, serial
    const std::string expected = Signature(ExhaustiveIrqSweep(factory, baseline));
    for (const unsigned jobs : {1u, 4u}) {
      SweepOptions engine_opts;
      engine_opts.checkpoint = true;
      engine_opts.jobs = jobs;
      EXPECT_EQ(expected, Signature(ExhaustiveIrqSweep(factory, engine_opts)))
          << "jobs=" << jobs;
    }
  }
}

TEST(EngineCampaignTest, ReportIsByteIdenticalAcrossJobCounts) {
  CampaignConfig cfg;
  cfg.seed = 42;
  cfg.random_runs = 6;
  cfg.storm_runs = 2;
  cfg.hostile_runs = 24;
  cfg.spurious_runs = 4;

  std::string csv1;
  {
    cfg.jobs = 1;
    std::ostringstream os;
    RunCampaign(cfg).WriteCsv(os);
    csv1 = os.str();
  }
  for (const unsigned jobs : {2u, 4u}) {
    cfg.jobs = jobs;
    std::ostringstream os;
    const CampaignReport rep = RunCampaign(cfg);
    rep.WriteCsv(os);
    EXPECT_EQ(csv1, os.str()) << "jobs=" << jobs;
    EXPECT_EQ(rep.failures(), 0u);
  }
}

}  // namespace
}  // namespace pmk
