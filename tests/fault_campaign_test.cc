// Campaign-level properties: seed reproducibility (identical seeds produce
// byte-identical reports), seed sensitivity, per-mode health, and the
// shrinking workflow end to end on a seeded invariant bug.

#include <gtest/gtest.h>

#include <sstream>

#include "src/fault/campaign.h"

namespace pmk {
namespace {

CampaignConfig QuickConfig(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.exhaustive = false;  // exhaustive mode is seed-independent; tested apart
  cfg.random_runs = 6;
  cfg.storm_runs = 2;
  cfg.hostile_runs = 24;
  cfg.spurious_runs = 4;
  return cfg;
}

TEST(FaultCampaignTest, IdenticalSeedsProduceByteIdenticalReports) {
  const CampaignReport a = RunCampaign(QuickConfig(42));
  const CampaignReport b = RunCampaign(QuickConfig(42));
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  a.WriteCsv(csv_a);
  b.WriteCsv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.failures(), 0u) << csv_a.str();
}

TEST(FaultCampaignTest, DifferentSeedsProduceDifferentSchedules) {
  const CampaignReport a = RunCampaign(QuickConfig(42));
  const CampaignReport b = RunCampaign(QuickConfig(7));
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  a.WriteCsv(csv_a);
  b.WriteCsv(csv_b);
  EXPECT_NE(csv_a.str(), csv_b.str());
  EXPECT_EQ(b.failures(), 0u) << csv_b.str();
}

TEST(FaultCampaignTest, AllModesReportAndPassUnderDefaultSeeds) {
  CampaignConfig cfg = QuickConfig(3);
  cfg.exhaustive = true;
  const CampaignReport rep = RunCampaign(cfg);
  EXPECT_EQ(rep.failures(), 0u);

  std::uint64_t n_exhaustive = 0;
  std::uint64_t n_random = 0;
  std::uint64_t n_storm = 0;
  std::uint64_t n_hostile = 0;
  std::uint64_t n_spurious = 0;
  std::uint64_t storm_spurious_acks = 0;
  std::uint64_t storm_coalesced = 0;
  for (const ScenarioResult& r : rep.results) {
    if (r.mode == "exhaustive") ++n_exhaustive;
    if (r.mode == "random") ++n_random;
    if (r.mode == "storm") {
      ++n_storm;
      storm_spurious_acks += r.spurious_acks;
      storm_coalesced += r.coalesced;
    }
    if (r.mode == "hostile") ++n_hostile;
    if (r.mode == "spurious") ++n_spurious;
  }
  // Exhaustive: one dry row plus one row per boundary for each of 3 ops.
  EXPECT_GT(n_exhaustive, 3u * 10u);
  EXPECT_EQ(n_random, 3u * cfg.random_runs);
  EXPECT_EQ(n_storm, cfg.storm_runs);
  EXPECT_EQ(n_hostile, cfg.hostile_runs);
  EXPECT_EQ(n_spurious, cfg.spurious_runs + 1u);  // + the kernel-entry row
  // The storm's disturbance mixes repeat-asserts and spurious acks; over a
  // couple of 150k-cycle runs both counters must move.
  EXPECT_GT(storm_spurious_acks, 0u);
  EXPECT_GT(storm_coalesced, 0u);
}

TEST(FaultCampaignTest, ExhaustiveModeIsSeedIndependent) {
  CampaignConfig only_sweep;
  only_sweep.exhaustive = true;
  only_sweep.random_runs = 0;
  only_sweep.storm_runs = 0;
  only_sweep.hostile_runs = 0;
  only_sweep.spurious_runs = 0;
  only_sweep.seed = 1;
  CampaignConfig other = only_sweep;
  other.seed = 999;
  const CampaignReport a = RunCampaign(only_sweep);
  const CampaignReport b = RunCampaign(other);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].plan, b.results[i].plan);
    EXPECT_EQ(a.results[i].ok, b.results[i].ok);
  }
}

TEST(FaultCampaignTest, CsvHasStableHeaderAndOneRowPerScenario) {
  const CampaignReport rep = RunCampaign(QuickConfig(5));
  std::ostringstream csv;
  rep.WriteCsv(csv);
  const std::string text = csv.str();
  ASSERT_NE(text.find("mode,op,plan,ok,restarts,preempt_points,spurious_acks,"
                      "coalesced,detail"),
            std::string::npos);
  std::uint64_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, rep.results.size() + 1);  // header + rows
}

}  // namespace
}  // namespace pmk
