// Fault-injection engine tests: injector mechanics, the exhaustive
// preemption-point sweep over the canonical long-running operations
// (the tentpole acceptance criterion), badged-abort progress auditing under
// adversarial preemption with mid-abort arrivals, hostile syscall inputs
// surfacing as structured errors, and the KernelError unification of the
// Direct* helpers.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "src/fault/scenario.h"
#include "src/kernel/error.h"
#include "src/obs/trace_sink.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

// ---------- Injector mechanics ----------

TEST(InjectionPlanTest, StableToString) {
  InjectionPlan plan;
  EXPECT_EQ(plan.ToString(), "none");
  plan.actions.push_back({InjectionAction::Trigger::kPreemptOrdinal, 3, 5, 1});
  plan.actions.push_back({InjectionAction::Trigger::kCycleAtLeast, 1200, 7, 4});
  EXPECT_EQ(plan.ToString(), "pp@3:l5;cyc@1200:l7x4");
  EXPECT_EQ(plan.TotalLines(), 5u);
}

TEST(FaultInjectorTest, PreemptOrdinalFiresAtExactBoundary) {
  System sys(KernelConfig::After(), EvalMachine(false));
  const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
  TcbObj* t = sys.AddThread(50);
  sys.kernel().DirectSetCurrent(t);

  FaultInjector inj(&sys.machine());
  InjectionPlan plan;
  plan.actions.push_back({InjectionAction::Trigger::kPreemptOrdinal, 2, 6, 1});
  inj.SetPlan(plan);
  sys.kernel().exec().set_fault_hook(&inj);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  const KernelExit e = sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  sys.kernel().exec().set_fault_hook(nullptr);

  // Injection at the third preemption-point boundary preempts the clear.
  EXPECT_EQ(e, KernelExit::kPreempted);
  EXPECT_EQ(inj.actions_fired(), 1u);
  EXPECT_EQ(inj.lines_asserted(), 1u);
  EXPECT_EQ(inj.preempt_points_seen(), 3u);  // ordinals 0,1,2 then preempt
  sys.kernel().CheckInvariants();
}

TEST(FaultInjectorTest, CycleTriggerAndBurstAssertMultipleLines) {
  System sys(KernelConfig::After(), EvalMachine(false));
  const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
  TcbObj* t = sys.AddThread(50);
  sys.kernel().DirectSetCurrent(t);

  EventLog log;
  sys.AttachTraceSink(&log);
  FaultInjector inj(&sys.machine());
  inj.set_trace_sink(&log);
  InjectionPlan plan;
  plan.actions.push_back({InjectionAction::Trigger::kCycleAtLeast, 1, 9, 3});
  inj.SetPlan(plan);
  sys.kernel().exec().set_fault_hook(&inj);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.dest_index = 70;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  sys.kernel().exec().set_fault_hook(nullptr);

  // A preempted exit may already have serviced (acked + masked) the lines,
  // so the assertion is over the injector's own counters and the trace.
  EXPECT_EQ(inj.actions_fired(), 1u);
  EXPECT_EQ(inj.lines_asserted(), 3u);
  bool saw_inject_event = false;
  for (const TraceEvent& ev : log.events()) {
    if (ev.kind == TraceEventKind::kFaultInject) {
      saw_inject_event = true;
      EXPECT_EQ(ev.id, 9u);
      EXPECT_EQ(ev.arg1, 3u);
    }
  }
  EXPECT_TRUE(saw_inject_event);
}

// ---------- Tentpole: exhaustive sweep over >= 3 long-running operations ----------

TEST(ExhaustiveSweepTest, AllCanonicalOpsSurviveEveryBoundary) {
  const struct {
    const char* name;
    OpFactory factory;
  } cases[] = {{"retype", MakeRetypeCase()},
               {"ep-delete", MakeEpDeleteCase()},
               {"badged-abort", MakeBadgedAbortCase()}};
  SweepOptions opts;
  for (const auto& c : cases) {
    const SweepResult sweep = ExhaustiveIrqSweep(c.factory, opts);
    EXPECT_GT(sweep.preempt_points, 10u) << c.name;
    EXPECT_EQ(sweep.runs.size(), sweep.preempt_points) << c.name;
    EXPECT_TRUE(sweep.AllOk()) << c.name;
    for (std::size_t k = 0; k < sweep.runs.size(); ++k) {
      const RunRecord& r = sweep.runs[k];
      EXPECT_TRUE(r.ok()) << c.name << " boundary " << k << ": " << r.detail;
      // Progress audit: one injected line preempts the operation exactly once.
      EXPECT_EQ(r.restarts, 1u) << c.name << " boundary " << k;
    }
  }
}

TEST(ExhaustiveSweepTest, SabotagedRunIsCaughtAndShrinksToOneAction) {
  // The deliberately seeded invariant bug of the acceptance criteria: an
  // injection-time callback corrupts an endpoint queue-length counter. The
  // invariant audit must flag every schedule that fires any action, and the
  // shrinker must cut a 4-action schedule down to a single action.
  const OpFactory factory = MakeEpDeleteCase();
  const auto sabotage = [](System& sys) {
    for (const auto& [base, obj] : sys.kernel().objects().objects()) {
      if (obj->type == ObjType::kEndpoint) {
        static_cast<EndpointObj*>(obj.get())->q_len += 1;
        return;
      }
    }
  };

  InjectionPlan noisy;
  for (std::uint64_t i = 0; i < 4; ++i) {
    noisy.actions.push_back(
        {InjectionAction::Trigger::kPreemptOrdinal, 2 + 7 * i, 4 + static_cast<std::uint32_t>(i), 1});
  }
  SweepOptions opts;
  const RunRecord failing = RunWithPlan(factory, noisy, opts, sabotage);
  ASSERT_FALSE(failing.ok());
  EXPECT_TRUE(failing.invariant_violation) << failing.detail;

  const InjectionPlan minimal = ShrinkPlan(factory, noisy, opts, sabotage);
  EXPECT_EQ(minimal.actions.size(), 1u);
  const RunRecord re = RunWithPlan(factory, minimal, opts, sabotage);
  EXPECT_FALSE(re.ok());
  EXPECT_TRUE(re.invariant_violation);

  // Without sabotage the same noisy schedule passes: the engine itself is
  // not what trips the invariants.
  EXPECT_TRUE(RunWithPlan(factory, noisy, opts).ok());
}

// ---------- Satellite: badged abort under adversarial preemption ----------

TEST(BadgedAbortSweepTest, ScanNeverSkipsOrRevisitsWithMidAbortArrivals) {
  // Exhaustive sweep over the abort scan with a hostile twist: every
  // preemption enqueues a new sender with the aborted badge. The four-field
  // resume state must (a) advance strictly forward through the original
  // queue (no double-visit), (b) abort every original matching sender
  // exactly once (no skip), and (c) never scan past the end marker into the
  // mid-abort arrivals.
  const auto factory = []() {
    struct Tracker {
      std::vector<TcbObj*> original;     // queue order at operation start
      std::vector<TcbObj*> stragglers;   // enqueued mid-abort
      std::ptrdiff_t last_resume = -1;   // original index the scan resumed at
    };
    auto trk = std::make_shared<Tracker>();

    OpInstance inst;
    inst.sys = std::make_unique<System>(KernelConfig::After(), EvalMachine(false));
    System& sys = *inst.sys;
    EndpointObj* ep = nullptr;
    const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
    Cap badged = sys.SlotOf(ep_cptr)->cap;
    badged.badge = 9;
    const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
    trk->original = sys.QueueSenders(ep, 32, {9, 4});
    inst.actor = sys.AddThread(50);
    sys.kernel().DirectSetCurrent(inst.actor);

    Cap root_cap;
    root_cap.type = ObjType::kCNode;
    root_cap.obj = sys.root()->base;
    inst.op = SysOp::kCall;
    inst.cptr = sys.AddCap(root_cap);
    inst.args.label = InvLabel::kCNodeRevoke;
    inst.args.arg0 = badged_cptr & 0xFF;

    EndpointObj* ep_ptr = ep;
    inst.on_preempted = [trk, ep_ptr](System& s) {
      if (ep_ptr->abort.valid && ep_ptr->abort.resume != nullptr) {
        // (a) strictly forward progress through the original queue.
        std::ptrdiff_t idx = -1;
        for (std::size_t i = 0; i < trk->original.size(); ++i) {
          if (trk->original[i] == ep_ptr->abort.resume) {
            idx = static_cast<std::ptrdiff_t>(i);
            break;
          }
        }
        if (idx < 0) {
          throw std::logic_error("abort resume points outside the original queue");
        }
        if (idx <= trk->last_resume) {
          throw std::logic_error("abort resume moved backwards: double-visit");
        }
        trk->last_resume = idx;
      }
      // Hostile arrival with the very badge being aborted.
      TcbObj* straggler = s.AddThread(10);
      s.kernel().DirectBlockOnSend(straggler, ep_ptr, 9);
      trk->stragglers.push_back(straggler);
    };
    inst.check_done = [trk](System&) {
      for (std::size_t i = 0; i < trk->original.size(); ++i) {
        const bool matching = (i % 2 == 0);  // badges cycle {9, 4}
        const ThreadState st = trk->original[i]->state;
        if (matching && st != ThreadState::kRestart) {
          throw std::logic_error("matching sender skipped by the abort scan");
        }
        if (!matching && st != ThreadState::kBlockedOnSend) {
          throw std::logic_error("non-matching sender disturbed by the abort scan");
        }
      }
      // (c) arrivals after the end marker were never scanned.
      for (TcbObj* s : trk->stragglers) {
        if (s->state != ThreadState::kBlockedOnSend) {
          throw std::logic_error("mid-abort arrival was scanned past the end marker");
        }
      }
    };
    return inst;
  };

  const SweepResult sweep = ExhaustiveIrqSweep(factory, SweepOptions{});
  EXPECT_GT(sweep.preempt_points, 10u);
  EXPECT_TRUE(sweep.dry_run.ok()) << sweep.dry_run.detail;
  for (std::size_t k = 0; k < sweep.runs.size(); ++k) {
    EXPECT_TRUE(sweep.runs[k].ok())
        << "boundary " << k << ": " << sweep.runs[k].detail;
  }
}

// ---------- Hostile inputs surface as structured errors ----------

class HostileInputTest : public ::testing::Test {
 protected:
  HostileInputTest() : sys_(KernelConfig::After(), EvalMachine(false)) {
    ep_cptr_ = sys_.AddEndpoint(&ep_);
    ut_cptr_ = sys_.AddUntyped(19, nullptr);
    Cap root_cap;
    root_cap.type = ObjType::kCNode;
    root_cap.obj = sys_.root()->base;
    cnode_cptr_ = sys_.AddCap(root_cap);
    actor_ = sys_.AddThread(50);
    sys_.kernel().DirectSetCurrent(actor_);
  }

  // A hostile call must come back as a kernel-reported error: no host
  // exception, no success, invariants intact.
  void ExpectRejected(std::uint32_t cptr, const SyscallArgs& args) {
    ASSERT_NO_THROW(sys_.kernel().Syscall(SysOp::kCall, cptr, args));
    EXPECT_NE(actor_->last_error, KError::kOk);
    ASSERT_NO_THROW(sys_.kernel().CheckInvariants());
  }

  System sys_;
  EndpointObj* ep_ = nullptr;
  std::uint32_t ep_cptr_ = 0;
  std::uint32_t ut_cptr_ = 0;
  std::uint32_t cnode_cptr_ = 0;
  TcbObj* actor_ = nullptr;
};

TEST_F(HostileInputTest, OversizedMessageLengthRejectedAtEntry) {
  SyscallArgs args;
  args.msg_len = 1'000'000;
  ExpectRejected(ep_cptr_, args);
  EXPECT_EQ(actor_->last_error, KError::kInvalidArg);
  EXPECT_EQ(ep_->q_len, 0u);  // never reached the endpoint
}

TEST_F(HostileInputTest, OversizedExtraCapCountRejectedAtEntry) {
  SyscallArgs args;
  args.msg_len = 4;
  args.n_extra = 50;
  ExpectRejected(ep_cptr_, args);
  EXPECT_EQ(actor_->last_error, KError::kInvalidArg);
}

TEST_F(HostileInputTest, RetypeWithShiftOverflowingObjBitsRejected) {
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 255;  // would shift a 64-bit value by 255 without the guard
  args.dest_index = 70;
  ExpectRejected(ut_cptr_, args);
  EXPECT_EQ(actor_->last_error, KError::kInvalidArg);
}

TEST_F(HostileInputTest, RetypeCountOverflowRejected) {
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.obj_count = 0x7FFF'FFFF;
  args.dest_index = 70;
  ExpectRejected(ut_cptr_, args);
}

TEST_F(HostileInputTest, OutOfRangeCapIndicesRejected) {
  SyscallArgs del;
  del.label = InvLabel::kCNodeDelete;
  del.arg0 = 0xFFFF'FFFFull;
  ExpectRejected(cnode_cptr_, del);

  SyscallArgs rev;
  rev.label = InvLabel::kCNodeRevoke;
  rev.arg0 = 1'000'000;
  ExpectRejected(cnode_cptr_, rev);
}

TEST_F(HostileInputTest, GuardMismatchCptrRejected) {
  SyscallArgs args;
  ExpectRejected(0xFFAB'CDEFu, args);
  EXPECT_EQ(actor_->last_error, KError::kInvalidCap);
}

TEST_F(HostileInputTest, DepthExhaustedDecodeRejected) {
  TcbObj* deep = sys_.AddThread(50);
  const std::uint32_t deep_cptr = sys_.BuildDeepCapSpace(deep, sys_.SlotOf(ep_cptr_)->cap, 32);
  sys_.kernel().DirectSetCurrent(deep);
  for (std::uint32_t bit = 0; bit < 32; bit += 5) {
    SyscallArgs args;
    args.label = InvLabel::kCNodeDelete;  // wrong type even if it decoded
    ASSERT_NO_THROW(sys_.kernel().Syscall(SysOp::kCall, deep_cptr ^ (1u << bit), args));
    EXPECT_NE(deep->last_error, KError::kOk) << "bit " << bit;
    ASSERT_NO_THROW(sys_.kernel().CheckInvariants());
  }
  sys_.kernel().DirectSetCurrent(actor_);
}

// ---------- KernelError unification of the Direct* helpers ----------

TEST(KernelErrorTest, DirectCapMisuseThrowsStructuredFault) {
  System sys(KernelConfig::After(), EvalMachine(false));
  Cap cap;
  cap.type = ObjType::kEndpoint;
  cap.obj = 0x1000;
  try {
    sys.kernel().DirectCap(sys.root(), 100'000, cap);
    FAIL() << "expected KernelError";
  } catch (const KernelError& e) {
    EXPECT_EQ(e.fault(), KernelFault::kCapIndexOutOfRange);
  }

  const std::uint32_t cptr = sys.AddEndpoint(nullptr);
  try {
    sys.kernel().DirectCap(sys.root(), cptr & 0xFF, cap);
    FAIL() << "expected KernelError";
  } catch (const KernelError& e) {
    EXPECT_EQ(e.fault(), KernelFault::kCapSlotOccupied);
  }
}

TEST(KernelErrorTest, DirectBindIrqLineOutOfRangeThrows) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  try {
    sys.kernel().DirectBindIrq(InterruptController::kNumLines, ep);
    FAIL() << "expected KernelError";
  } catch (const KernelError& e) {
    EXPECT_EQ(e.fault(), KernelFault::kBadIrqLine);
  }
}

TEST(KernelErrorTest, KernelErrorIsDistinguishableFromHostBugs) {
  // The harness contract: modelled kernel faults derive from KernelError,
  // executor divergence derives from ExecError; campaigns must be able to
  // tell them apart while std::exception handlers still catch both.
  const KernelError ke(KernelFault::kNoAsidPool, "test");
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&ke), nullptr);
  EXPECT_STREQ(KernelFaultName(KernelFault::kNoAsidPool), "NoAsidPool");
  const ExecError ee("test");
  EXPECT_NE(dynamic_cast<const std::logic_error*>(&ee), nullptr);
}

}  // namespace
}  // namespace pmk
