// Differential tests for the hot-path overhaul: the SoA shift/mask cache, the
// precomputed executor charge path and the cached timer deadline must produce
// bit-identical modelled results to the seed implementation. The seed cache
// (array-of-structures, division-based indexing) is reimplemented here
// independently and every optimised component is cross-checked against it (or
// against the retained reference entry points) under randomized op streams
// and whole-kernel workloads.

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/fault/scenario.h"
#include "src/hw/cache.h"
#include "src/hw/hotpath.h"
#include "src/hw/machine.h"
#include "src/kir/executor.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

// Restores the process-wide reference-mode flag on scope exit so a failing
// assertion cannot leak reference mode into later tests.
class ReferenceModeGuard {
 public:
  explicit ReferenceModeGuard(bool on) : prev_(hotpath::ReferenceMode()) {
    hotpath::SetReferenceMode(on);
  }
  ~ReferenceModeGuard() { hotpath::SetReferenceMode(prev_); }
  ReferenceModeGuard(const ReferenceModeGuard&) = delete;
  ReferenceModeGuard& operator=(const ReferenceModeGuard&) = delete;

 private:
  bool prev_;
};

// Restores the process-wide compiled-backend flag on scope exit. Constructed
// with false, it forces newly built Executors onto the record-walking
// interpreter (kPrepared/kGeneric) instead of the compiled threaded-code
// backend.
class CompiledModeGuard {
 public:
  explicit CompiledModeGuard(bool on) : prev_(hotpath::CompiledMode()) {
    hotpath::SetCompiledMode(on);
  }
  ~CompiledModeGuard() { hotpath::SetCompiledMode(prev_); }
  CompiledModeGuard(const CompiledModeGuard&) = delete;
  CompiledModeGuard& operator=(const CompiledModeGuard&) = delete;

 private:
  bool prev_;
};

// Independent reimplementation of the pre-overhaul cache: array-of-structures
// line storage and division-based set/tag arithmetic. Kept deliberately naive
// — it is the differential-testing oracle, not a performance path.
class SeedModelCache {
 public:
  explicit SeedModelCache(const CacheConfig& config)
      : config_(config),
        num_sets_(config.NumSets()),
        lines_(static_cast<std::size_t>(config.NumSets()) * config.ways),
        rr_next_(config.NumSets(), 0) {}

  bool Access(Addr addr) {
    stats_.accesses++;
    const std::uint32_t set = SetIndexOf(addr);
    const Addr tag = TagOf(addr);
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& l = LineAt(set, w);
      if (l.valid && l.tag == tag) {
        stats_.hits++;
        return true;
      }
    }
    stats_.misses++;
    const std::uint32_t all = config_.ways >= 32 ? ~0u : ((1u << config_.ways) - 1);
    if ((locked_ways_ & all) == all) {
      return false;
    }
    const std::uint32_t victim = PickVictim(set);
    LineAt(set, victim) = {true, tag};
    return false;
  }

  bool Contains(Addr addr) const {
    const std::uint32_t set = SetIndexOf(addr);
    const Addr tag = TagOf(addr);
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const Line& l = lines_[static_cast<std::size_t>(set) * config_.ways + w];
      if (l.valid && l.tag == tag) {
        return true;
      }
    }
    return false;
  }

  void InstallLine(Addr addr, std::uint32_t way) {
    LineAt(SetIndexOf(addr), way) = {true, TagOf(addr)};
  }

  void LockWay(std::uint32_t way) { locked_ways_ |= (1u << way); }
  void UnlockWay(std::uint32_t way) { locked_ways_ &= ~(1u << way); }

  void InvalidateAll() {
    for (Line& l : lines_) {
      l.valid = false;
    }
  }

  void Pollute(Addr garbage_base, double fraction = 1.0) {
    const std::uint32_t threshold = static_cast<std::uint32_t>(fraction * 1024.0 + 0.5);
    for (std::uint32_t set = 0; set < num_sets_; ++set) {
      if ((set * 2654435761u >> 6) % 1024 >= threshold) {
        continue;
      }
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (locked_ways_ & (1u << w)) {
          continue;
        }
        const Addr addr =
            garbage_base + (static_cast<Addr>(w) * num_sets_ + set) * config_.line_bytes;
        LineAt(set, w) = {true, TagOf(addr)};
      }
    }
  }

  const CacheStats& stats() const { return stats_; }

 private:
  struct Line {
    bool valid = false;
    Addr tag = 0;
  };

  std::uint32_t SetIndexOf(Addr addr) const {
    return static_cast<std::uint32_t>((addr / config_.line_bytes) & (num_sets_ - 1));
  }
  Addr TagOf(Addr addr) const { return addr / config_.line_bytes / num_sets_; }

  Line& LineAt(std::uint32_t set, std::uint32_t way) {
    return lines_[static_cast<std::size_t>(set) * config_.ways + way];
  }

  std::uint32_t PickVictim(std::uint32_t set) {
    if (config_.policy == ReplacementPolicy::kRoundRobin) {
      const std::uint32_t w = rr_next_[set];
      for (std::uint32_t tries = 0; tries < config_.ways; ++tries) {
        const std::uint32_t cand = (w + tries) % config_.ways;
        if (!(locked_ways_ & (1u << cand))) {
          rr_next_[set] = (cand + 1) % config_.ways;
          return cand;
        }
      }
    } else {
      for (std::uint32_t tries = 0; tries < 4 * config_.ways; ++tries) {
        lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xB400u);
        const std::uint32_t cand = static_cast<std::uint32_t>(lfsr_) % config_.ways;
        if (!(locked_ways_ & (1u << cand))) {
          return cand;
        }
      }
      for (std::uint32_t cand = 0; cand < config_.ways; ++cand) {
        if (!(locked_ways_ & (1u << cand))) {
          return cand;
        }
      }
    }
    return 0;
  }

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;
  std::vector<std::uint32_t> rr_next_;
  std::uint32_t locked_ways_ = 0;
  std::uint64_t lfsr_ = 0xACE1u;
  CacheStats stats_;
};

// An address stream mixing tight loops (hits), strided sweeps (conflict
// misses) and uniform noise — roughly what kernel execution throws at the L1s.
std::vector<Addr> MakeAddressStream(std::mt19937_64& rng, std::size_t n) {
  std::vector<Addr> out;
  out.reserve(n);
  std::uniform_int_distribution<Addr> uniform(0, 1u << 22);
  Addr loop_base = 0x100000;
  while (out.size() < n) {
    switch (rng() % 3) {
      case 0:  // loop over a small working set
        loop_base = uniform(rng) & ~Addr{31};
        for (int rep = 0; rep < 8 && out.size() < n; ++rep) {
          for (Addr off = 0; off < 512 && out.size() < n; off += 32) {
            out.push_back(loop_base + off);
          }
        }
        break;
      case 1:  // page-strided sweep: same set, different tags
        for (Addr i = 0; i < 24 && out.size() < n; ++i) {
          out.push_back((uniform(rng) & 0xFFF) + i * 4096);
        }
        break;
      default:
        for (int i = 0; i < 16 && out.size() < n; ++i) {
          out.push_back(uniform(rng));
        }
        break;
    }
  }
  return out;
}

void ExpectStatsEq(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
}

class CacheEquivalenceTest : public ::testing::TestWithParam<ReplacementPolicy> {};

// The SoA cache and the seed-model oracle must agree per access and in every
// derived observation across a randomized op stream that also exercises
// locking, installation, invalidation and pollution.
TEST_P(CacheEquivalenceTest, RandomStreamMatchesSeedModel) {
  CacheConfig cfg{.name = "eq", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32,
                  .policy = GetParam()};
  Cache opt(cfg);
  SeedModelCache seed(cfg);

  std::mt19937_64 rng(42);
  const std::vector<Addr> stream = MakeAddressStream(rng, 30000);
  std::size_t pos = 0;
  while (pos < stream.size()) {
    // Occasionally mutate lock/valid state the same way on both models.
    switch (rng() % 16) {
      case 0: {
        const std::uint32_t way = static_cast<std::uint32_t>(rng() % cfg.ways);
        opt.LockWay(way);
        seed.LockWay(way);
        break;
      }
      case 1: {
        const std::uint32_t way = static_cast<std::uint32_t>(rng() % cfg.ways);
        opt.UnlockWay(way);
        seed.UnlockWay(way);
        break;
      }
      case 2: {
        const Addr a = stream[pos] & ~Addr{31};
        const std::uint32_t way = static_cast<std::uint32_t>(rng() % cfg.ways);
        opt.InstallLine(a, way);
        seed.InstallLine(a, way);
        break;
      }
      case 3:
        opt.InvalidateAll();
        seed.InvalidateAll();
        break;
      case 4: {
        const double fraction = (rng() % 2 != 0) ? 1.0 : 0.5;
        opt.Pollute(0x4000'0000, fraction);
        seed.Pollute(0x4000'0000, fraction);
        break;
      }
      default:
        break;
    }
    const std::size_t burst = std::min<std::size_t>(64, stream.size() - pos);
    for (std::size_t i = 0; i < burst; ++i) {
      const Addr a = stream[pos + i];
      ASSERT_EQ(opt.Access(a), seed.Access(a)) << "access #" << pos + i;
    }
    // Contains is a pure observation; spot-check it over the burst.
    for (std::size_t i = 0; i < burst; i += 7) {
      const Addr a = stream[pos + i];
      ASSERT_EQ(opt.Contains(a), seed.Contains(a));
    }
    pos += burst;
  }
  ExpectStatsEq(opt.stats(), seed.stats());
}

// AccessReference (the retained division-based benchmark baseline) must be
// state-identical to the shift/mask Access on the same stream.
TEST_P(CacheEquivalenceTest, AccessReferenceMatchesAccess) {
  CacheConfig cfg{.name = "ref", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32,
                  .policy = GetParam()};
  Cache fast(cfg);
  Cache ref(cfg);

  std::mt19937_64 rng(7);
  const std::vector<Addr> stream = MakeAddressStream(rng, 20000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(fast.Access(stream[i]), ref.AccessReference(stream[i])) << "access #" << i;
  }
  ExpectStatsEq(fast.stats(), ref.stats());
  for (std::size_t i = 0; i < stream.size(); i += 13) {
    ASSERT_EQ(fast.Contains(stream[i]), ref.Contains(stream[i]));
  }
}

// The split AccessLine(set, tag) entry must be exactly Access(addr) when fed
// the decomposed address, and the decomposition must match the seed's
// division arithmetic.
TEST_P(CacheEquivalenceTest, AccessLineMatchesAccess) {
  CacheConfig cfg{.name = "split", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32,
                  .policy = GetParam()};
  Cache whole(cfg);
  Cache split(cfg);

  std::mt19937_64 rng(11);
  const std::vector<Addr> stream = MakeAddressStream(rng, 10000);
  for (const Addr a : stream) {
    EXPECT_EQ(split.SetIndexOf(a),
              static_cast<std::uint32_t>((a / cfg.line_bytes) & (cfg.NumSets() - 1)));
    EXPECT_EQ(split.TagOf(a), a / cfg.line_bytes / cfg.NumSets());
    ASSERT_EQ(whole.Access(a), split.AccessLine(split.SetIndexOf(a), split.TagOf(a)));
  }
  ExpectStatsEq(whole.stats(), split.stats());
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheEquivalenceTest,
                         ::testing::Values(ReplacementPolicy::kRoundRobin,
                                           ReplacementPolicy::kPseudoRandom),
                         [](const auto& param_info) {
                           return param_info.param == ReplacementPolicy::kRoundRobin
                                      ? "RoundRobin"
                                      : "PseudoRandom";
                         });

// Pollute(fraction) must touch exactly the seed model's set selection at
// every fraction, including with locked ways held out.
TEST(CacheEquivalence, PolluteFractionMatchesSeedModel) {
  for (const double fraction : {0.0, 0.25, 0.5, 1.0}) {
    CacheConfig cfg{.name = "pollute", .size_bytes = 128 * 1024, .ways = 8, .line_bytes = 32};
    Cache opt(cfg);
    SeedModelCache seed(cfg);
    opt.LockWay(0);
    seed.LockWay(0);
    opt.Pollute(0x6000'0000, fraction);
    seed.Pollute(0x6000'0000, fraction);
    // Probe every garbage line address the full-pollution pass would install.
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
      for (std::uint32_t set = 0; set < cfg.NumSets(); set += 17) {
        const Addr a =
            0x6000'0000 + (static_cast<Addr>(w) * cfg.NumSets() + set) * cfg.line_bytes;
        ASSERT_EQ(opt.Contains(a), seed.Contains(a))
            << "fraction " << fraction << " way " << w << " set " << set;
      }
    }
  }
}

// Pinned lines must survive arbitrary conflict pressure under the SoA layout,
// and a fully-locked cache must bypass allocation entirely.
TEST(CacheEquivalence, WayLockingUnderSoaLayout) {
  CacheConfig cfg{.name = "lock", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32};
  Cache c(cfg);
  const Addr pinned = 0x100040;
  c.InstallLine(pinned, 0);
  c.LockWay(0);

  // 64 tags mapping to the pinned line's set.
  const std::uint32_t set_span = cfg.NumSets() * cfg.line_bytes;
  for (int i = 1; i <= 64; ++i) {
    c.Access(pinned + static_cast<Addr>(i) * set_span);
  }
  EXPECT_TRUE(c.Contains(pinned));

  for (std::uint32_t w = 0; w < cfg.ways; ++w) {
    c.LockWay(w);
  }
  const CacheStats before = c.stats();
  EXPECT_FALSE(c.Access(0x7777'0000));
  EXPECT_FALSE(c.Contains(0x7777'0000));  // bypassed, not allocated
  EXPECT_EQ(c.stats().misses, before.misses + 1);
}

// A copied Machine shares the original's LFSR state: identical access
// patterns on both must replay identically, including pseudo-random victim
// choices made after the copy.
TEST(CacheEquivalence, LfsrDeterminismAcrossMachineCopies) {
  MachineConfig mc;
  mc.l1i.policy = ReplacementPolicy::kPseudoRandom;
  mc.l1d.policy = ReplacementPolicy::kPseudoRandom;
  Machine a(mc);

  std::mt19937_64 rng(3);
  const std::vector<Addr> warmup = MakeAddressStream(rng, 4000);
  for (const Addr addr : warmup) {
    a.DataAccess(addr, false);
  }

  Machine b(a);
  const std::vector<Addr> tail = MakeAddressStream(rng, 4000);
  for (const Addr addr : tail) {
    a.DataAccess(addr, (addr & 64) != 0);
    b.DataAccess(addr, (addr & 64) != 0);
  }
  EXPECT_EQ(a.Now(), b.Now());
  EXPECT_EQ(a.counters().l1d_misses, b.counters().l1d_misses);
  ExpectStatsEq(a.l1d().stats(), b.l1d().stats());
  for (const Addr addr : tail) {
    ASSERT_EQ(a.l1d().Contains(addr), b.l1d().Contains(addr));
  }
}

// --- Whole-stack equivalence: reference vs optimised execution ---

struct KernelRunOutcome {
  Cycles now = 0;
  HwCounters counters;
  CacheStats l1i, l1d;
  std::vector<Cycles> irq_latencies;
  std::uint32_t preemptions = 0;
};

// A campaign-shaped workload: the attacker retypes large frames under a
// periodic timer, the operation preempts, restarts and completes, and the
// real-time thread's interrupt latencies are recorded. The machine geometry
// is a parameter so the same digest can be compared across charge modes on
// non-default cache configurations.
KernelRunOutcome RunTimerPreemptWorkload(const MachineConfig& mc = EvalMachine(true)) {
  System sys(KernelConfig::After(), mc);
  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt_task = sys.AddThread(250);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectBlockOnRecv(rt_task, timer_ep);

  const std::uint32_t ut_cptr = sys.AddUntyped(21);
  TcbObj* attacker = sys.AddThread(20);
  sys.kernel().DirectSetCurrent(attacker);

  KernelRunOutcome out;
  sys.machine().timer().set_period(20'000);
  sys.machine().timer().Restart(sys.machine().Now());

  std::uint32_t dest = 40;
  for (int step = 0; step < 60; ++step) {
    if (sys.machine().irq().AnyPending() && sys.kernel().current() != rt_task) {
      sys.kernel().HandleIrqEntry();
    }
    if (sys.kernel().current() == rt_task) {
      sys.machine().RawCycles(200);
      sys.kernel().Syscall(SysOp::kRecv, timer_cptr, SyscallArgs{});
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
      if (sys.kernel().current() == sys.kernel().idle()) {
        sys.kernel().DirectSetCurrent(attacker);
      }
      continue;
    }
    SyscallArgs args;
    args.label = InvLabel::kUntypedRetype;
    args.obj_type = ObjType::kFrame;
    args.obj_bits = 16;
    args.dest_index = dest;
    const KernelExit e = sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
    if (e == KernelExit::kPreempted) {
      out.preemptions++;
    } else if (attacker->last_error == KError::kOk) {
      dest++;
    }
    if (sys.kernel().current() == sys.kernel().idle()) {
      sys.kernel().DirectSetCurrent(attacker);
    }
    sys.machine().RawCycles(500);
  }
  sys.machine().timer().set_period(0);

  out.now = sys.machine().Now();
  out.counters = sys.machine().counters();
  out.l1i = sys.machine().l1i().stats();
  out.l1d = sys.machine().l1d().stats();
  out.irq_latencies = sys.kernel().irq_latencies();
  return out;
}

void ExpectOutcomesEq(const KernelRunOutcome& a, const KernelRunOutcome& b) {
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.irq_latencies, b.irq_latencies);
  EXPECT_EQ(a.counters.instructions, b.counters.instructions);
  EXPECT_EQ(a.counters.l1i_accesses, b.counters.l1i_accesses);
  EXPECT_EQ(a.counters.l1i_misses, b.counters.l1i_misses);
  EXPECT_EQ(a.counters.l1d_accesses, b.counters.l1d_accesses);
  EXPECT_EQ(a.counters.l1d_misses, b.counters.l1d_misses);
  EXPECT_EQ(a.counters.l2_accesses, b.counters.l2_accesses);
  EXPECT_EQ(a.counters.l2_misses, b.counters.l2_misses);
  EXPECT_EQ(a.counters.branches, b.counters.branches);
  EXPECT_EQ(a.counters.branch_mispredicts, b.counters.branch_mispredicts);
  EXPECT_EQ(a.counters.mem_stall_cycles, b.counters.mem_stall_cycles);
  ExpectStatsEq(a.l1i, b.l1i);
  ExpectStatsEq(a.l1d, b.l1d);
}

// The full kernel workload must be bit-identical between the optimised
// (compiled, the default) execution and the seed-profile reference execution:
// same final cycle, same PMU counters, same cache statistics, same interrupt
// latencies.
TEST(ExecutorEquivalence, ReferenceModeIsBitIdentical) {
  const KernelRunOutcome fast = RunTimerPreemptWorkload();
  KernelRunOutcome ref;
  {
    ReferenceModeGuard guard(true);
    ref = RunTimerPreemptWorkload();
  }
  EXPECT_FALSE(fast.irq_latencies.empty());
  EXPECT_GT(fast.preemptions, 0u);
  ExpectOutcomesEq(fast, ref);
}

// The compiled threaded-code backend must be the default on standard geometry
// and must match the record-walking interpreter digest-for-digest on the full
// preempting workload.
TEST(ExecutorEquivalence, CompiledBackendMatchesInterpreter) {
  {
    System sys(KernelConfig::After(), EvalMachine(true));
    ASSERT_EQ(sys.kernel().exec().charge_mode(), Executor::ChargeMode::kCompiled);
  }
  const KernelRunOutcome compiled = RunTimerPreemptWorkload();
  KernelRunOutcome interp;
  {
    CompiledModeGuard guard(false);
    System sys(KernelConfig::After(), EvalMachine(true));
    ASSERT_EQ(sys.kernel().exec().charge_mode(), Executor::ChargeMode::kPrepared);
    interp = RunTimerPreemptWorkload();
  }
  EXPECT_GT(compiled.preemptions, 0u);
  ExpectOutcomesEq(compiled, interp);
}

// The generic (per-execution resolution) charge path must also match the
// prepared path; it is the interpreter fallback for non-32-byte L1I lines.
TEST(ExecutorEquivalence, GenericChargeModeIsBitIdentical) {
  CompiledModeGuard guard(false);  // exercise the interpreter modes
  System prepared(KernelConfig::After(), EvalMachine(false));
  System generic(KernelConfig::After(), EvalMachine(false));
  ASSERT_EQ(prepared.kernel().exec().charge_mode(), Executor::ChargeMode::kPrepared);
  generic.kernel().exec().set_charge_mode(Executor::ChargeMode::kGeneric);

  for (System* sys : {&prepared, &generic}) {
    System::WorstIpc w = sys->BuildWorstCaseIpc();
    sys->kernel().DirectSetCurrent(w.caller);
    sys->kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
  }
  EXPECT_EQ(prepared.machine().Now(), generic.machine().Now());
  EXPECT_EQ(prepared.machine().counters().l1i_accesses,
            generic.machine().counters().l1i_accesses);
  EXPECT_EQ(prepared.machine().counters().l1i_misses,
            generic.machine().counters().l1i_misses);
  EXPECT_EQ(prepared.machine().counters().l1d_misses,
            generic.machine().counters().l1d_misses);
}

// A machine with 64-byte lines throughout (a non-kPreparedLineBytes geometry)
// must select kGeneric with the compiled backend off and kCompiled with it
// on, and both must reproduce the reference digest end-to-end on the full
// preempting workload: same final cycle, PMU counters, cache statistics and
// interrupt latencies.
TEST(ExecutorEquivalence, WideLineGeometryMatchesReferenceEndToEnd) {
  MachineConfig mc = EvalMachine(true);
  mc.l1i.line_bytes = 64;
  mc.l1d.line_bytes = 64;
  mc.l2.line_bytes = 64;

  KernelRunOutcome ref;
  {
    ReferenceModeGuard guard(true);
    ref = RunTimerPreemptWorkload(mc);
  }
  EXPECT_FALSE(ref.irq_latencies.empty());
  EXPECT_GT(ref.preemptions, 0u);

  KernelRunOutcome generic;
  {
    CompiledModeGuard guard(false);
    System probe(KernelConfig::After(), mc);
    ASSERT_EQ(probe.kernel().exec().charge_mode(), Executor::ChargeMode::kGeneric);
    generic = RunTimerPreemptWorkload(mc);
  }
  ExpectOutcomesEq(generic, ref);

  {
    System probe(KernelConfig::After(), mc);
    ASSERT_EQ(probe.kernel().exec().charge_mode(), Executor::ChargeMode::kCompiled);
  }
  const KernelRunOutcome compiled = RunTimerPreemptWorkload(mc);
  ExpectOutcomesEq(compiled, ref);
}

// Forcing kPrepared onto a machine whose L1I line size disagrees with the
// Layout()-time spans must be rejected loudly — a silent acceptance would
// mischarge every I-fetch in the run. The error names both geometries; the
// modes that do handle the geometry still switch cleanly.
TEST(ExecutorEquivalence, SetChargeModePreparedRejectsLineMismatch) {
  MachineConfig mc = EvalMachine(false);
  mc.l1i.line_bytes = 64;
  System sys(KernelConfig::After(), mc);

  try {
    sys.kernel().exec().set_charge_mode(Executor::ChargeMode::kPrepared);
    FAIL() << "set_charge_mode(kPrepared) accepted a 64-byte-line machine";
  } catch (const ExecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("64"), std::string::npos) << what;
    EXPECT_NE(what.find("kPreparedLineBytes"), std::string::npos) << what;
  }

  // The rejection must leave the executor usable on a supported mode.
  sys.kernel().exec().set_charge_mode(Executor::ChargeMode::kGeneric);
  EXPECT_EQ(sys.kernel().exec().charge_mode(), Executor::ChargeMode::kGeneric);
  sys.kernel().exec().set_charge_mode(Executor::ChargeMode::kCompiled);
  EXPECT_EQ(sys.kernel().exec().charge_mode(), Executor::ChargeMode::kCompiled);

  // On matching geometry kPrepared is accepted.
  System std_sys(KernelConfig::After(), EvalMachine(false));
  std_sys.kernel().exec().set_charge_mode(Executor::ChargeMode::kPrepared);
  EXPECT_EQ(std_sys.kernel().exec().charge_mode(), Executor::ChargeMode::kPrepared);
}

// Clones inherit the source executor's charge mode, not the current global
// flag: a checkpoint forked before a mode flip must keep replaying on the
// path it was built with.
TEST(ExecutorEquivalence, CloneInheritsChargeMode) {
  std::unique_ptr<System> ref_sys;
  {
    ReferenceModeGuard guard(true);
    ref_sys = std::make_unique<System>(KernelConfig::After(), EvalMachine(false));
  }
  ASSERT_EQ(ref_sys->kernel().exec().charge_mode(), Executor::ChargeMode::kReference);
  const std::unique_ptr<System> clone = ref_sys->Clone();
  EXPECT_EQ(clone->kernel().exec().charge_mode(), Executor::ChargeMode::kReference);
}

// An exhaustive IRQ sweep — dry run plus one injected run per preemption
// boundary — must report identical results in both modes.
TEST(ExecutorEquivalence, IrqSweepIsBitIdentical) {
  SweepOptions opts;
  const SweepResult fast = ExhaustiveIrqSweep(MakeRetypeCase(), opts);
  SweepResult ref;
  {
    ReferenceModeGuard guard(true);
    ref = ExhaustiveIrqSweep(MakeRetypeCase(), opts);
  }
  ASSERT_EQ(fast.preempt_points, ref.preempt_points);
  ASSERT_EQ(fast.runs.size(), ref.runs.size());
  EXPECT_EQ(fast.dry_run.max_irq_latency, ref.dry_run.max_irq_latency);
  for (std::size_t i = 0; i < fast.runs.size(); ++i) {
    EXPECT_EQ(fast.runs[i].plan, ref.runs[i].plan);
    EXPECT_EQ(fast.runs[i].completed, ref.runs[i].completed);
    EXPECT_EQ(fast.runs[i].restarts, ref.runs[i].restarts);
    EXPECT_EQ(fast.runs[i].preempt_points, ref.runs[i].preempt_points);
    EXPECT_EQ(fast.runs[i].max_irq_latency, ref.runs[i].max_irq_latency);
  }
}

// Campaign CSVs are the repository's strongest determinism artefact: the
// seeded campaign must emit byte-identical CSV in both modes.
TEST(ExecutorEquivalence, CampaignCsvIsByteIdentical) {
  CampaignConfig cc;
  cc.seed = 42;
  cc.random_runs = 4;
  cc.storm_runs = 1;
  cc.hostile_runs = 16;
  cc.spurious_runs = 4;

  std::ostringstream fast_csv;
  RunCampaign(cc).WriteCsv(fast_csv);

  std::ostringstream ref_csv;
  {
    ReferenceModeGuard guard(true);
    RunCampaign(cc).WriteCsv(ref_csv);
  }
  EXPECT_EQ(fast_csv.str(), ref_csv.str());
}

// --- Timer deadline regression ---

// The deadline-gated Advance must assert the timer line at exactly the same
// cycles as the seed's tick-every-advance scheme, across irregular advance
// sizes, multi-period jumps, mid-run set_period/Restart pokes and period-0
// disablement.
TEST(TimerDeadline, AssertionCyclesMatchTickEveryAdvance) {
  MachineConfig mc;
  mc.timer_period = 1000;
  Machine fast(mc);
  Machine ref(mc);
  ref.timer().set_reference_tick_mode(true);
  ASSERT_EQ(ref.timer().next_deadline(), 0u);

  fast.timer().Restart(0);
  ref.timer().Restart(0);
  ASSERT_EQ(ref.timer().next_deadline(), 0u);  // reference mode survives pokes

  std::mt19937_64 rng(5);
  auto step = [&](Cycles n) {
    fast.RawCycles(n);
    ref.RawCycles(n);
    ASSERT_EQ(fast.irq().IsPending(InterruptController::kTimerLine),
              ref.irq().IsPending(InterruptController::kTimerLine));
    if (fast.irq().IsPending(InterruptController::kTimerLine)) {
      const auto t_fast = fast.irq().Acknowledge(InterruptController::kTimerLine);
      const auto t_ref = ref.irq().Acknowledge(InterruptController::kTimerLine);
      ASSERT_TRUE(t_fast.has_value());
      ASSERT_EQ(*t_fast, *t_ref);
    }
    ASSERT_EQ(fast.irq().coalesced_asserts(), ref.irq().coalesced_asserts());
  };

  for (int i = 0; i < 400; ++i) {
    step(1 + rng() % 300);
  }
  step(5'500);  // one advance crossing multiple periods: coalesces identically

  // Mid-run retargeting through the public timer accessors.
  fast.timer().set_period(350);
  ref.timer().set_period(350);
  fast.timer().Restart(fast.Now());
  ref.timer().Restart(ref.Now());
  for (int i = 0; i < 200; ++i) {
    step(1 + rng() % 120);
  }

  // Disable, run quietly, re-enable.
  fast.timer().set_period(0);
  ref.timer().set_period(0);
  EXPECT_EQ(fast.timer().next_deadline(), IntervalTimer::kNever);
  for (int i = 0; i < 50; ++i) {
    step(1 + rng() % 500);
  }
  fast.timer().set_period(777);
  ref.timer().set_period(777);
  fast.timer().Restart(fast.Now());
  ref.timer().Restart(ref.Now());
  for (int i = 0; i < 200; ++i) {
    step(1 + rng() % 250);
  }
  EXPECT_EQ(fast.Now(), ref.Now());
}

// A disabled timer's deadline is kNever: the hot loop must never call into
// Tick at all. (Deadline bookkeeping only; firing behaviour is covered above.)
TEST(TimerDeadline, DisabledTimerNeverDue) {
  MachineConfig mc;  // timer_period = 0
  Machine m(mc);
  EXPECT_EQ(m.timer().next_deadline(), IntervalTimer::kNever);
  m.RawCycles(1'000'000);
  EXPECT_FALSE(m.irq().IsPending(InterruptController::kTimerLine));
}

}  // namespace
}  // namespace pmk
