// Unit tests for the machine model: caches (associativity, replacement,
// way-locking, pollution), branch predictor, interrupt controller/timer and
// the cost-charging machine.

#include <stdexcept>

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/obs/trace_sink.h"

namespace pmk {
namespace {

CacheConfig SmallCache(std::uint32_t ways, ReplacementPolicy pol = ReplacementPolicy::kRoundRobin) {
  CacheConfig c;
  c.size_bytes = 1024;
  c.ways = ways;
  c.line_bytes = 32;
  c.policy = pol;
  return c;
}

TEST(CacheConfigTest, ValidGeometriesConstruct) {
  EXPECT_NO_THROW(Cache(SmallCache(1)));
  EXPECT_NO_THROW(Cache(SmallCache(4)));
  CacheConfig l2{.name = "L2", .size_bytes = 128 * 1024, .ways = 8, .line_bytes = 32};
  EXPECT_NO_THROW(Cache{l2});
}

TEST(CacheConfigTest, InvalidGeometriesThrow) {
  CacheConfig c = SmallCache(4);
  c.ways = 0;
  EXPECT_THROW(Cache{c}, std::invalid_argument);  // ways < 1

  c = SmallCache(4);
  c.line_bytes = 24;
  EXPECT_THROW(Cache{c}, std::invalid_argument);  // non-power-of-two line

  c = SmallCache(4);
  c.size_bytes = 1024 + 32;
  EXPECT_THROW(Cache{c}, std::invalid_argument);  // not a multiple of ways*line

  c = SmallCache(4);
  c.size_bytes = 3 * 4 * 32;  // 3 sets
  EXPECT_THROW(Cache{c}, std::invalid_argument);  // non-power-of-two set count

  c = SmallCache(4);
  c.size_bytes = 0;
  EXPECT_THROW(Cache{c}, std::invalid_argument);
}

TEST(CacheTest, MissThenHit) {
  Cache c(SmallCache(4));
  EXPECT_FALSE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x101C));  // same 32-byte line
  EXPECT_FALSE(c.Access(0x1020));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheTest, AssociativityHoldsConflictingLines) {
  // 1024 B, 4 ways, 32 B lines -> 8 sets; stride 8*32=256 collides.
  Cache c(SmallCache(4));
  for (Addr i = 0; i < 4; ++i) {
    EXPECT_FALSE(c.Access(i * 256));
  }
  for (Addr i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.Access(i * 256)) << i;
  }
}

TEST(CacheTest, RoundRobinEvictsOldest) {
  Cache c(SmallCache(2));  // 16 sets
  EXPECT_FALSE(c.Access(0 * 512));
  EXPECT_FALSE(c.Access(1 * 512));
  EXPECT_FALSE(c.Access(2 * 512));  // evicts way 0 (line 0)
  EXPECT_FALSE(c.Access(0 * 512));  // line 0 gone
  EXPECT_TRUE(c.Access(2 * 512));
}

TEST(CacheTest, DirectMappedAlwaysEvicts) {
  Cache c(SmallCache(1));  // 32 sets
  EXPECT_FALSE(c.Access(0));
  EXPECT_FALSE(c.Access(1024));
  EXPECT_FALSE(c.Access(0));
}

TEST(CacheTest, MostRecentLineAlwaysResident) {
  // The paper's soundness argument for the direct-mapped approximation: the
  // most recently accessed line in a set survives under round-robin.
  Cache c(SmallCache(4));
  for (int i = 0; i < 100; ++i) {
    const Addr a = static_cast<Addr>(i % 7) * 256;
    c.Access(a);
    EXPECT_TRUE(c.Contains(a));
  }
}

TEST(CacheTest, LockedWayIsNotEvicted) {
  Cache c(SmallCache(2));
  c.InstallLine(0x40, 0);
  c.LockWay(0);
  // Thrash the set with conflicting lines (stride 512 for 16 sets).
  for (Addr i = 1; i <= 8; ++i) {
    c.Access(0x40 + i * 512);
  }
  EXPECT_TRUE(c.Contains(0x40));
}

TEST(CacheTest, AllWaysLockedBypassesAllocation) {
  Cache c(SmallCache(2));
  c.LockWay(0);
  c.LockWay(1);
  EXPECT_FALSE(c.Access(0x2000));
  EXPECT_FALSE(c.Access(0x2000));  // still not cached
}

TEST(CacheTest, PolluteEvictsEverythingUnlocked) {
  Cache c(SmallCache(4));
  c.Access(0x100);
  c.Pollute(0x4000'0000);
  EXPECT_FALSE(c.Contains(0x100));
}

TEST(CacheTest, PolluteSparesLockedWays) {
  Cache c(SmallCache(4));
  c.InstallLine(0x100, 0);
  c.LockWay(0);
  c.Pollute(0x4000'0000);
  EXPECT_TRUE(c.Contains(0x100));
}

TEST(CacheTest, InvalidateAllClearsEvenLocked) {
  Cache c(SmallCache(4));
  c.InstallLine(0x100, 0);
  c.LockWay(0);
  c.InvalidateAll();
  EXPECT_FALSE(c.Contains(0x100));
}

TEST(CacheTest, PseudoRandomStaysWithinUnlockedWays) {
  Cache c(SmallCache(4, ReplacementPolicy::kPseudoRandom));
  c.InstallLine(0x40, 0);
  c.LockWay(0);
  for (Addr i = 1; i <= 64; ++i) {
    c.Access(0x40 + i * 256);
  }
  EXPECT_TRUE(c.Contains(0x40));
}

TEST(BranchPredictorTest, DisabledIsConstantFiveCycles) {
  BranchPredictor bp(BranchPredictorConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bp.OnBranch(0x100, BranchKind::kConditional, i % 2 == 0), 5u);
  }
  EXPECT_EQ(bp.OnBranch(0x100, BranchKind::kNone, true), 0u);
}

TEST(BranchPredictorTest, EnabledLearnsBias) {
  BranchPredictorConfig cfg;
  cfg.enabled = true;
  BranchPredictor bp(cfg);
  bp.OnBranch(0x100, BranchKind::kConditional, true);  // first sight
  bp.OnBranch(0x100, BranchKind::kConditional, true);
  // Now strongly/weakly taken: predicted correctly.
  const Cycles c = bp.OnBranch(0x100, BranchKind::kConditional, true);
  EXPECT_EQ(c, cfg.correct_taken);
  // Surprise direction: mispredict.
  EXPECT_EQ(bp.OnBranch(0x100, BranchKind::kConditional, false), cfg.mispredict);
}

TEST(BranchPredictorTest, DisabledCostCanBeBelowMispredict) {
  // Paper Section 5.1: disabling the predictor makes all branches a constant
  // 5 cycles, below the 7-cycle mispredict.
  BranchPredictorConfig cfg;
  EXPECT_LT(cfg.disabled_cost, cfg.mispredict);
}

TEST(IrqTest, AssertPendingAcknowledge) {
  InterruptController ic;
  EXPECT_FALSE(ic.AnyPending());
  ic.Assert(3, 100);
  EXPECT_TRUE(ic.AnyPending());
  EXPECT_EQ(ic.PendingLine().value(), 3u);
  EXPECT_EQ(ic.Acknowledge(3), 100u);
  EXPECT_FALSE(ic.AnyPending());
}

TEST(IrqTest, ReassertKeepsOriginalTimestamp) {
  InterruptController ic;
  ic.Assert(1, 100);
  ic.Assert(1, 200);
  EXPECT_EQ(ic.Acknowledge(1), 100u);
}

TEST(IrqTest, MaskedLineDoesNotShowPending) {
  InterruptController ic;
  ic.Mask(2);
  ic.Assert(2, 50);
  EXPECT_FALSE(ic.AnyPending());
  ic.Unmask(2);
  EXPECT_TRUE(ic.AnyPending());
}

TEST(IrqTest, LowestLineWins) {
  InterruptController ic;
  ic.Assert(5, 10);
  ic.Assert(2, 20);
  EXPECT_EQ(ic.PendingLine().value(), 2u);
}

TEST(IrqTest, TimerFiresEveryPeriod) {
  InterruptController ic;
  IntervalTimer t(&ic, 1000);
  t.Restart(0);
  t.Tick(500);
  EXPECT_FALSE(ic.IsPending(InterruptController::kTimerLine));
  t.Tick(1000);
  EXPECT_TRUE(ic.IsPending(InterruptController::kTimerLine));
  EXPECT_EQ(ic.Acknowledge(InterruptController::kTimerLine), 1000u);
  t.Tick(3000);
  EXPECT_EQ(ic.Acknowledge(InterruptController::kTimerLine), 2000u);
}

TEST(IrqTest, SpuriousAcknowledgeIsAbsorbed) {
  InterruptController ic;
  EXPECT_EQ(ic.Acknowledge(4), std::nullopt);
  EXPECT_EQ(ic.spurious_acks(), 1u);
  // A real assertion afterwards is unaffected by the earlier spurious ack.
  ic.Assert(4, 70);
  EXPECT_EQ(ic.Acknowledge(4), 70u);
  // Acking the same line twice: the second is spurious again.
  EXPECT_EQ(ic.Acknowledge(4), std::nullopt);
  EXPECT_EQ(ic.spurious_acks(), 2u);
  EXPECT_FALSE(ic.AnyPending());
}

TEST(IrqTest, CoalescedReassertCountsAndKeepsFirstTimestamp) {
  InterruptController ic;
  ic.Assert(6, 100);
  ic.Assert(6, 250);
  ic.Assert(6, 400);
  EXPECT_EQ(ic.coalesced_asserts(), 2u);
  EXPECT_EQ(ic.Acknowledge(6), 100u);  // latency measured from first edge
  ic.Reset();
  EXPECT_EQ(ic.coalesced_asserts(), 0u);
  EXPECT_EQ(ic.spurious_acks(), 0u);
}

TEST(IrqTest, SpuriousAndCoalescedEmitTraceEvents) {
  InterruptController ic;
  EventLog log;
  ic.set_trace_sink(&log);
  ic.Assert(7, 100);
  ic.Assert(7, 300);   // coalesced
  ic.Acknowledge(7);   // genuine
  ic.Acknowledge(7);   // spurious
  bool saw_coalesced = false;
  bool saw_spurious = false;
  for (const TraceEvent& ev : log.events()) {
    if (ev.kind == TraceEventKind::kIrqCoalesced) {
      saw_coalesced = true;
      EXPECT_EQ(ev.id, 7u);
      EXPECT_EQ(ev.arg0, 100u);  // the surviving first assert cycle
    }
    if (ev.kind == TraceEventKind::kIrqSpuriousAck) {
      saw_spurious = true;
      EXPECT_EQ(ev.id, 7u);
    }
  }
  EXPECT_TRUE(saw_coalesced);
  EXPECT_TRUE(saw_spurious);
}

TEST(MachineTest, InstrFetchChargesBasePlusMisses) {
  MachineConfig mc;
  Machine m(mc);
  // 8 instructions = 32 bytes = 1 line, cold: 8 + 60.
  m.InstrFetch(0x1000, 8);
  EXPECT_EQ(m.Now(), 8u + 60u);
  // Again: all hits.
  m.InstrFetch(0x1000, 8);
  EXPECT_EQ(m.Now(), 2 * 8u + 60u);
}

TEST(MachineTest, L2HitCostsLess) {
  MachineConfig mc;
  mc.l2_enabled = true;
  Machine m(mc);
  m.DataAccess(0x2000, false);  // L1 miss, L2 miss: 96 + 2-cycle load stall
  EXPECT_EQ(m.Now(), 96u + 2u);
  m.l1d().InvalidateAll();      // drop only L1
  m.DataAccess(0x2000, false);  // L1 miss, L2 hit: 26 + stall
  EXPECT_EQ(m.Now(), 96u + 26u + 4u);
}

TEST(MachineTest, L2DisabledUsesFasterMemory) {
  // Paper Section 5.1: 60 cycles with L2 off vs 96 with L2 on.
  Machine off{MachineConfig{}};
  off.DataAccess(0x2000, false);
  EXPECT_EQ(off.Now(), 60u + 2u);  // + load-use stall
  MachineConfig mc;
  mc.l2_enabled = true;
  Machine on{mc};
  on.DataAccess(0x2000, false);
  EXPECT_EQ(on.Now(), 96u + 2u);
}

TEST(MachineTest, DataAccessHitCostsOnlyTheLoadStall) {
  Machine m{MachineConfig{}};
  m.DataAccess(0x3000, false);                 // cold: 60 + 2
  const Cycles after_miss = m.Now();
  m.DataAccess(0x3000, false);                 // hit: just the 2-cycle stall
  EXPECT_EQ(m.Now() - after_miss, 2u);
}

TEST(MachineTest, PinL1MakesLinesFree) {
  MachineConfig mc;
  Machine m(mc);
  const Addr line = 0x3000;
  const Addr lines[] = {line};
  m.PinL1(lines, lines, 1);
  m.PolluteCaches();
  m.InstrFetch(line, 4);
  EXPECT_EQ(m.Now(), 4u);  // no miss penalty
  m.DataAccess(line, false);
  EXPECT_EQ(m.Now(), 4u + 2u);  // only the pipeline load stall remains
}

TEST(MachineTest, TimerTicksDuringExecution) {
  MachineConfig mc;
  mc.timer_period = 100;
  Machine m(mc);
  m.timer().Restart(0);
  m.RawCycles(250);
  EXPECT_TRUE(m.irq().IsPending(InterruptController::kTimerLine));
  EXPECT_EQ(m.irq().AssertTime(InterruptController::kTimerLine), 100u);
}

TEST(MachineTest, TimerAssertionCyclesUnchangedByDeadlineCache) {
  // Regression for the cached next-deadline scheme: assertion cycles must be
  // exactly those of ticking the timer on every Advance. Fine-grained
  // advances land the assertion on the period boundary, not on the advance
  // that crossed it.
  MachineConfig mc;
  mc.timer_period = 100;
  Machine m(mc);
  m.timer().Restart(0);
  EXPECT_EQ(m.timer().next_deadline(), 100u);
  for (int i = 0; i < 34; ++i) {
    m.RawCycles(3);  // crosses 100 at now=102
  }
  EXPECT_EQ(m.irq().AssertTime(InterruptController::kTimerLine), 100u);
  ASSERT_TRUE(m.irq().Acknowledge(InterruptController::kTimerLine).has_value());
  EXPECT_EQ(m.timer().next_deadline(), 200u);

  // One large advance over several periods coalesces onto the first boundary.
  m.RawCycles(350);  // now=449, periods at 200/300/400
  EXPECT_EQ(m.irq().AssertTime(InterruptController::kTimerLine), 200u);
  EXPECT_EQ(m.irq().coalesced_asserts(), 2u);
  EXPECT_EQ(m.timer().next_deadline(), 500u);

  // A direct set_period poke through the accessor refreshes the deadline.
  m.timer().set_period(0);
  EXPECT_EQ(m.timer().next_deadline(), IntervalTimer::kNever);
  m.timer().set_period(50);
  m.timer().Restart(m.Now());
  EXPECT_EQ(m.timer().next_deadline(), m.Now() + 50);
}

TEST(MachineTest, BranchCostsDependOnPredictorConfig) {
  Machine m{MachineConfig{}};
  m.Branch(0x100, BranchKind::kConditional, true);
  EXPECT_EQ(m.Now(), 5u);
  m.Branch(0x100, BranchKind::kNone, false);
  EXPECT_EQ(m.Now(), 5u);
}

TEST(ClockTest, MicrosecondsAt532MHz) {
  ClockSpec clk;
  EXPECT_NEAR(clk.ToMicros(532), 1.0, 1e-9);
  EXPECT_NEAR(clk.ToMicros(189'117), 355.5, 0.1);  // the paper's bound
}

}  // namespace
}  // namespace pmk
