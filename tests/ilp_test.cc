// Unit tests for the simplex / branch-and-bound ILP solver against
// hand-solved instances.

#include <gtest/gtest.h>

#include "src/wcet/ilp.h"

namespace pmk {
namespace {

LinearProgram::Row Le(std::vector<std::uint32_t> idx, std::vector<double> val, double rhs) {
  LinearProgram::Row r;
  r.idx = std::move(idx);
  r.val = std::move(val);
  r.rhs = rhs;
  r.type = LinearProgram::RowType::kLe;
  return r;
}

LinearProgram::Row Eq(std::vector<std::uint32_t> idx, std::vector<double> val, double rhs) {
  LinearProgram::Row r = Le(std::move(idx), std::move(val), rhs);
  r.type = LinearProgram::RowType::kEq;
  return r;
}

TEST(LpTest, SingleVariableBound) {
  LinearProgram lp;
  lp.AddVar(3.0);
  lp.AddRow(Le({0}, {1.0}, 5.0));
  const SolveResult r = SolveLp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 15.0, 1e-6);
  EXPECT_NEAR(r.x[0], 5.0, 1e-6);
}

TEST(LpTest, ClassicTwoVariable) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36.
  LinearProgram lp;
  lp.AddVar(3.0);
  lp.AddVar(5.0);
  lp.AddRow(Le({0}, {1.0}, 4.0));
  lp.AddRow(Le({1}, {2.0}, 12.0));
  lp.AddRow(Le({0, 1}, {3.0, 2.0}, 18.0));
  const SolveResult r = SolveLp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(LpTest, EqualityConstraint) {
  // max x + y st x + y = 7, x <= 3 -> z = 7.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  lp.AddRow(Eq({0, 1}, {1.0, 1.0}, 7.0));
  lp.AddRow(Le({0}, {1.0}, 3.0));
  const SolveResult r = SolveLp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
}

TEST(LpTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 (written -x <= -2).
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddRow(Le({0}, {1.0}, 1.0));
  lp.AddRow(Le({0}, {-1.0}, -2.0));
  EXPECT_EQ(SolveLp(lp).status, SolveStatus::kInfeasible);
}

TEST(LpTest, UnboundedDetected) {
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddRow(Le({0}, {-1.0}, 0.0));  // x >= 0 only
  EXPECT_EQ(SolveLp(lp).status, SolveStatus::kUnbounded);
}

TEST(LpTest, NegativeRhsNormalization) {
  // max x st -x <= -3 (x >= 3), x <= 10 -> z = 10.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddRow(Le({0}, {-1.0}, -3.0));
  lp.AddRow(Le({0}, {1.0}, 10.0));
  const SolveResult r = SolveLp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
}

TEST(LpTest, DegenerateVertexHandled) {
  // Redundant constraints meeting at the optimum.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  lp.AddRow(Le({0, 1}, {1.0, 1.0}, 4.0));
  lp.AddRow(Le({0, 1}, {2.0, 2.0}, 8.0));
  lp.AddRow(Le({0}, {1.0}, 4.0));
  const SolveResult r = SolveLp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(IlpTest, FractionalLpRoundsDownCorrectly) {
  // max x st 2x <= 5: LP -> 2.5; ILP -> 2.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddRow(Le({0}, {2.0}, 5.0));
  const SolveResult r = SolveIlp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(IlpTest, KnapsackStyle) {
  // max 8x + 11y + 6z st 5x + 7y + 4z <= 14, x,y,z <= 1 (0/1 knapsack).
  // Optimal integral: x=1,y=0,z=1 -> 14? check: 8+6=14 (weight 9);
  // y=1,z=1 -> 17 (weight 11 <= 14). So best = 8+11? weight 12: x+y=19? 5+7=12
  // <= 14 -> 19.
  LinearProgram lp;
  lp.AddVar(8.0);
  lp.AddVar(11.0);
  lp.AddVar(6.0);
  lp.AddRow(Le({0, 1, 2}, {5.0, 7.0, 4.0}, 14.0));
  for (std::uint32_t v = 0; v < 3; ++v) {
    lp.AddRow(Le({v}, {1.0}, 1.0));
  }
  const SolveResult r = SolveIlp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 19.0, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
  EXPECT_NEAR(r.x[2], 0.0, 1e-6);
}

TEST(IlpTest, FlowNetworkIsIntegral) {
  // A tiny IPET-shaped problem: source=1, a splits to b/c, both join d.
  // Vars: e_sa, e_ab, e_ac, e_bd, e_cd, e_d_sink. Max cost on c-branch.
  LinearProgram lp;
  const std::uint32_t sa = lp.AddVar(10);   // cost of a
  const std::uint32_t ab = lp.AddVar(20);   // cost of b
  const std::uint32_t ac = lp.AddVar(50);   // cost of c
  const std::uint32_t bd = lp.AddVar(5);    // cost of d
  const std::uint32_t cd = lp.AddVar(5);    // cost of d
  const std::uint32_t ds = lp.AddVar(0);
  lp.AddRow(Eq({sa}, {1.0}, 1.0));
  lp.AddRow(Eq({sa, ab, ac}, {1.0, -1.0, -1.0}, 0.0));        // node a
  lp.AddRow(Eq({ab, bd}, {1.0, -1.0}, 0.0));                  // node b
  lp.AddRow(Eq({ac, cd}, {1.0, -1.0}, 0.0));                  // node c
  lp.AddRow(Eq({bd, cd, ds}, {1.0, 1.0, -1.0}, 0.0));         // node d
  const SolveResult r = SolveIlp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10 + 50 + 5, 1e-6);
  EXPECT_NEAR(r.x[ac], 1.0, 1e-6);
  EXPECT_NEAR(r.x[ab], 0.0, 1e-6);
}

TEST(IlpTest, LoopBoundConstraint) {
  // entry -> head; head loops <= 3 times per entry; each iteration costs 7.
  // Vars: e_entry(=1), e_back. count(head) = e_entry + e_back <= 3.
  LinearProgram lp;
  const std::uint32_t en = lp.AddVar(7);
  const std::uint32_t back = lp.AddVar(7);
  lp.AddRow(Eq({en}, {1.0}, 1.0));
  lp.AddRow(Le({en, back}, {1.0, 1.0}, 3.0));
  const SolveResult r = SolveIlp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 21.0, 1e-6);
}

TEST(IlpTest, IntegralityGapRequiresBranching) {
  // max x + y st 2x + 2y <= 3 -> LP 1.5, ILP 1.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  lp.AddRow(Le({0, 1}, {2.0, 2.0}, 3.0));
  const SolveResult lr = SolveLp(lp);
  ASSERT_EQ(lr.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lr.objective, 1.5, 1e-6);
  const SolveResult ir = SolveIlp(lp);
  ASSERT_EQ(ir.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ir.objective, 1.0, 1e-6);
}

TEST(IlpTest, ModeratelySizedChainSolvesQuickly) {
  // A chain of 200 nodes with flow conservation: stress sanity.
  LinearProgram lp;
  std::vector<std::uint32_t> vars;
  for (int i = 0; i < 200; ++i) {
    vars.push_back(lp.AddVar(static_cast<double>(i % 7)));
  }
  lp.AddRow(Eq({vars[0]}, {1.0}, 1.0));
  for (int i = 0; i + 1 < 200; ++i) {
    lp.AddRow(Eq({vars[i], vars[i + 1]}, {1.0, -1.0}, 0.0));
  }
  const SolveResult r = SolveIlp(lp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  double expect = 0;
  for (int i = 0; i < 200; ++i) {
    expect += i % 7;
  }
  EXPECT_NEAR(r.objective, expect, 1e-5);
}

}  // namespace
}  // namespace pmk
