// Fault-injection tests for the dynamic invariant checker: deliberately
// corrupt each class of kernel state the seL4 proof protects (Section 2.2)
// and assert the checker catches it. The checker is our stand-in for the
// formal invariants, so IT must be tested too.

#include <gtest/gtest.h>

#include "src/sim/workload.h"

namespace pmk {

// Befriended by Kernel: lets the fault-injection tests reach private
// scheduler state.
class KernelTestPeer {
 public:
  static void SetBitmapBit(Kernel& k, std::uint8_t prio) { k.BitmapSet(prio); }
};

namespace {

struct Rig {
  Rig() : sys(KernelConfig::After(), EvalMachine(false)) {
    a = sys.AddThread(10);
    b = sys.AddThread(20);
    sys.AddEndpoint(&ep);
    sys.kernel().DirectResume(a);
    sys.kernel().DirectResume(b);
    sys.kernel().DirectSetCurrent(sys.AddThread(5));
  }
  System sys;
  TcbObj* a = nullptr;
  TcbObj* b = nullptr;
  EndpointObj* ep = nullptr;
};

TEST(InvariantFaultTest, CleanSystemPasses) {
  Rig r;
  EXPECT_NO_THROW(r.sys.kernel().CheckInvariants());
}

TEST(InvariantFaultTest, DetectsBlockedThreadInRunQueue) {
  Rig r;
  r.a->state = ThreadState::kBlockedOnSend;  // still queued: Benno violation
  r.a->blocked_on = r.ep->base;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsBrokenRunQueueBackPointer) {
  Rig r;
  r.a->sched_prev = r.b;  // bogus
  r.b->sched_prev = r.a;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsWrongPriorityQueue) {
  Rig r;
  r.a->prio = 99;  // queued at 10, claims 99
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsStaleBitmapBit) {
  Rig r;
  KernelTestPeer::SetBitmapBit(r.sys.kernel(), 77);
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsRunnableThreadLost) {
  Rig r;
  // Runnable, flagged unqueued, not current: unreachable by the scheduler.
  r.sys.kernel().DirectUnblock(r.a);
  // Corrupt: drop it from the queue without updating state.
  while (r.a->in_run_queue) {
    // Simulate corruption by clearing the flag only.
    r.a->in_run_queue = false;
  }
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsEndpointQueueCycle) {
  Rig r;
  TcbObj* s1 = r.sys.AddThread(10);
  TcbObj* s2 = r.sys.AddThread(10);
  r.sys.kernel().DirectBlockOnSend(s1, r.ep, 1);
  r.sys.kernel().DirectBlockOnSend(s2, r.ep, 2);
  s2->ep_next = s1;  // cycle
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsQueueLengthMismatch) {
  Rig r;
  TcbObj* s1 = r.sys.AddThread(10);
  r.sys.kernel().DirectBlockOnSend(s1, r.ep, 1);
  r.ep->q_len = 7;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsWrongQueueStateMember) {
  Rig r;
  TcbObj* s1 = r.sys.AddThread(10);
  r.sys.kernel().DirectBlockOnSend(s1, r.ep, 1);
  s1->state = ThreadState::kBlockedOnRecv;  // on a SEND queue
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsIdleEndpointWithWaiters) {
  Rig r;
  TcbObj* s1 = r.sys.AddThread(10);
  r.sys.kernel().DirectBlockOnSend(s1, r.ep, 1);
  r.ep->qstate = EndpointObj::QState::kIdle;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsCapToDeadObject) {
  Rig r;
  EndpointObj* doomed = nullptr;
  r.sys.AddEndpoint(&doomed);
  r.sys.kernel().objects().Remove(doomed->base);  // object gone, cap remains
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsBrokenMdbLink) {
  Rig r;
  EndpointObj* e2 = nullptr;
  const std::uint32_t c1 = r.sys.AddEndpoint(&e2);
  CapSlot* s1 = r.sys.SlotOf(c1);
  Cap copy = s1->cap;
  r.sys.AddCap(copy, s1);
  s1->mdb_next = nullptr;  // sever the forward link only
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsShadowBackPointerMismatch) {
  KernelConfig kc = KernelConfig::After();
  System sys(kc, EvalMachine(false));
  PageDirObj* pd = sys.kernel().DirectPageDir();
  PageTableObj* pt = sys.kernel().DirectPageTable();
  Cap pt_cap;
  pt_cap.type = ObjType::kPageTable;
  pt_cap.obj = pt->base;
  CapSlot* pt_slot = sys.kernel().DirectCap(sys.root(), 100, pt_cap);
  sys.kernel().DirectMapPageTable(pd, 16, pt, pt_slot);
  FrameObj* f = sys.kernel().DirectFrame(12);
  Cap fc;
  fc.type = ObjType::kFrame;
  fc.obj = f->base;
  CapSlot* fs = sys.kernel().DirectCap(sys.root(), 101, fc);
  sys.kernel().DirectMapFrame(pd, (Addr{16} << 20) | (3 << 12), f, fs);
  EXPECT_NO_THROW(sys.kernel().CheckInvariants());
  pt->shadow[3] = nullptr;  // dangling mapping without back-pointer
  EXPECT_THROW(sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsLowestMappedAboveLiveEntry) {
  System sys(KernelConfig::After(), EvalMachine(false));
  PageDirObj* pd = sys.kernel().DirectPageDir();
  PageTableObj* pt = sys.kernel().DirectPageTable();
  Cap pt_cap;
  pt_cap.type = ObjType::kPageTable;
  pt_cap.obj = pt->base;
  CapSlot* pt_slot = sys.kernel().DirectCap(sys.root(), 100, pt_cap);
  sys.kernel().DirectMapPageTable(pd, 16, pt, pt_slot);
  FrameObj* f = sys.kernel().DirectFrame(12);
  Cap fc;
  fc.type = ObjType::kFrame;
  fc.obj = f->base;
  CapSlot* fs = sys.kernel().DirectCap(sys.root(), 101, fc);
  sys.kernel().DirectMapFrame(pd, (Addr{16} << 20) | (3 << 12), f, fs);
  pt->lowest_mapped = 9;  // claims nothing below 9 while entry 3 is live
  EXPECT_THROW(sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsWatermarkOutsideRegion) {
  Rig r;
  UntypedObj* ut = nullptr;
  r.sys.AddUntyped(12, &ut);
  ut->watermark = ut->End() + 64;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

TEST(InvariantFaultTest, DetectsBlockedCurrentThread) {
  Rig r;
  r.sys.kernel().current()->state = ThreadState::kBlockedOnSend;
  r.sys.kernel().current()->blocked_on = r.ep->base;
  EXPECT_THROW(r.sys.kernel().CheckInvariants(), std::logic_error);
}

}  // namespace
}  // namespace pmk
