// ResultJournal crash-safety: torn tails, corrupt frames, foreign digests.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/engine/journal.h"
#include "src/engine/wire.h"

namespace pmk::engine {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("pmk_journal_test_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string JournalPath() const { return (fs::path(dir_) / ResultJournal::kFileName).string(); }

  std::vector<std::uint8_t> FileBytes() const {
    std::vector<std::uint8_t> data;
    std::FILE* f = std::fopen(JournalPath().c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    data.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    return data;
  }

  void WriteFileBytes(const std::vector<std::uint8_t>& data) const {
    std::FILE* f = std::fopen(JournalPath().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  }

  std::string dir_;
};

constexpr std::uint64_t kDigest = 0xD1E57'CAFEull;

std::vector<std::uint8_t> Payload(std::uint8_t fill, std::size_t n = 32) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST_F(JournalTest, KeyIsDeterministicAndSensitiveToEveryInput) {
  const std::uint64_t k = ResultJournal::Key(kDigest, "exhaustive|retype|pp@3", 42);
  EXPECT_EQ(k, ResultJournal::Key(kDigest, "exhaustive|retype|pp@3", 42));
  EXPECT_NE(k, ResultJournal::Key(kDigest + 1, "exhaustive|retype|pp@3", 42));
  EXPECT_NE(k, ResultJournal::Key(kDigest, "exhaustive|retype|pp@4", 42));
  EXPECT_NE(k, ResultJournal::Key(kDigest, "exhaustive|retype|pp@3", 43));
}

TEST_F(JournalTest, AppendSurvivesReopen) {
  {
    ResultJournal j(dir_, kDigest);
    EXPECT_EQ(j.size(), 0u);
    j.Append(1, Payload(0xAA));
    j.Append(2, Payload(0xBB, 1000));
  }
  ResultJournal j(dir_, kDigest);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.truncated_bytes(), 0u);
  EXPECT_FALSE(j.invalidated());
  EXPECT_EQ(j.Lookup(1), Payload(0xAA));
  EXPECT_EQ(j.Lookup(2), Payload(0xBB, 1000));
  EXPECT_EQ(j.Lookup(3), std::nullopt);
}

TEST_F(JournalTest, DuplicateAppendKeepsFirstResult) {
  ResultJournal j(dir_, kDigest);
  j.Append(7, Payload(0x11));
  j.Append(7, Payload(0x22));
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.Lookup(7), Payload(0x11));
}

TEST_F(JournalTest, TornTailIsTruncatedOnOpen) {
  {
    ResultJournal j(dir_, kDigest);
    j.Append(1, Payload(0xAA));
    j.Append(2, Payload(0xBB));
  }
  // Simulate a mid-append kill: a fully-written entry followed by a torn one
  // (frame cut short after the header and half the payload).
  std::vector<std::uint8_t> data = FileBytes();
  WireWriter w;
  w.U64(3);
  w.Bytes(Payload(0xCC));
  std::vector<std::uint8_t> torn;
  AppendFrame(torn, FrameType::kJournalEntry, w.bytes());
  const std::size_t full_frame_size = torn.size();
  torn.resize(torn.size() / 2);
  const std::size_t intact_size = data.size();
  data.insert(data.end(), torn.begin(), torn.end());
  WriteFileBytes(data);

  {
    ResultJournal j(dir_, kDigest);
    EXPECT_EQ(j.size(), 2u);
    EXPECT_EQ(j.truncated_bytes(), torn.size());
    EXPECT_EQ(j.Lookup(1), Payload(0xAA));
    EXPECT_EQ(j.Lookup(2), Payload(0xBB));
    EXPECT_EQ(j.Lookup(3), std::nullopt);
    // Resumable after recovery: the re-executed run lands cleanly.
    j.Append(3, Payload(0xCC));
  }
  // Torn bytes were truncated away; the re-executed entry re-appended whole.
  EXPECT_EQ(FileBytes().size(), intact_size + full_frame_size);
  ResultJournal j(dir_, kDigest);
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.truncated_bytes(), 0u);
  EXPECT_EQ(j.Lookup(3), Payload(0xCC));
}

TEST_F(JournalTest, CorruptEntryDropsItAndTheTail) {
  {
    ResultJournal j(dir_, kDigest);
    j.Append(1, Payload(0xAA));
  }
  const std::size_t first_entry_end = FileBytes().size();
  {
    // Reopen to append two more (also exercises append-after-reopen).
    ResultJournal j(dir_, kDigest);
    j.Append(2, Payload(0xBB));
    j.Append(3, Payload(0xCC));
  }
  std::vector<std::uint8_t> data = FileBytes();
  data[first_entry_end + kFrameHeaderBytes + 4] ^= 0x01;  // flip a payload bit of entry 2
  WriteFileBytes(data);

  ResultJournal j(dir_, kDigest);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.Lookup(1), Payload(0xAA));
  EXPECT_EQ(j.Lookup(2), std::nullopt);
  EXPECT_EQ(j.Lookup(3), std::nullopt);  // after the corrupt frame: unreachable, dropped
  EXPECT_EQ(j.truncated_bytes(), data.size() - first_entry_end);
}

TEST_F(JournalTest, ForeignDigestInvalidatesWholeJournal) {
  {
    ResultJournal j(dir_, kDigest);
    j.Append(1, Payload(0xAA));
  }
  ResultJournal j(dir_, kDigest + 1);  // new kernel image: old results are void
  EXPECT_TRUE(j.invalidated());
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.Lookup(1), std::nullopt);
  j.Append(1, Payload(0xDD));

  // And the rewritten journal belongs to the new digest.
  ResultJournal back(dir_, kDigest + 1);
  EXPECT_FALSE(back.invalidated());
  EXPECT_EQ(back.Lookup(1), Payload(0xDD));
}

TEST_F(JournalTest, GarbageFileRecoversEmpty) {
  fs::create_directories(dir_);
  WriteFileBytes(std::vector<std::uint8_t>(301, 0x5A));
  ResultJournal j(dir_, kDigest);
  EXPECT_TRUE(j.invalidated());
  EXPECT_EQ(j.size(), 0u);
  j.Append(9, Payload(0xEE));
  ResultJournal back(dir_, kDigest);
  EXPECT_EQ(back.Lookup(9), Payload(0xEE));
}

TEST_F(JournalTest, EmptyPayloadRoundTrips) {
  {
    ResultJournal j(dir_, kDigest);
    j.Append(5, {});
  }
  ResultJournal j(dir_, kDigest);
  EXPECT_EQ(j.Lookup(5), std::vector<std::uint8_t>{});
}

}  // namespace
}  // namespace pmk::engine
