// Tests for the future-work extensions (paper Sections 6.1, 6.4, 8):
// whole-kernel L2 pinning and the preemptible atomic send-receive.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

KernelConfig SplitRr() {
  KernelConfig kc = KernelConfig::After();
  kc.preemptible_send_receive = true;
  return kc;
}

TEST(SplitSendReceiveTest, UnpreemptedReplyRecvBehavesIdentically) {
  System sys(SplitRr(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs call;
  call.msg_len = 6;
  sys.kernel().Syscall(SysOp::kCall, cptr, call);
  ASSERT_EQ(sys.kernel().current(), server);

  server->mrs[0] = 0xAB;
  SyscallArgs rr;
  rr.msg_len = 1;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr), KernelExit::kDone);
  EXPECT_EQ(client->state, ThreadState::kRunning);
  EXPECT_EQ(client->mrs[0], 0xABu);
  EXPECT_EQ(server->state, ThreadState::kBlockedOnRecv);
  sys.kernel().CheckInvariants();
}

TEST(SplitSendReceiveTest, PreemptedBetweenPhasesRestartsIntoReceive) {
  System sys(SplitRr(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs call;
  call.msg_len = 6;
  sys.kernel().Syscall(SysOp::kCall, cptr, call);
  ASSERT_EQ(sys.kernel().current(), server);

  // An interrupt is pending when the server's ReplyRecv reaches the
  // between-phases preemption point.
  sys.machine().irq().Assert(InterruptController::kTimerLine, sys.machine().Now());
  server->mrs[0] = 0xCD;
  SyscallArgs rr;
  rr.msg_len = 1;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr), KernelExit::kPreempted);
  // The send (reply) phase completed: the client got its answer...
  EXPECT_EQ(client->state, ThreadState::kRunning);
  EXPECT_EQ(client->mrs[0], 0xCDu);
  // ...but the server has not yet entered the receive phase.
  EXPECT_NE(server->state, ThreadState::kBlockedOnRecv);
  sys.kernel().CheckInvariants();

  // The restarted syscall performs only the receive phase (the reply is a
  // no-op: reply_to was consumed) and must not double-deliver.
  sys.kernel().DirectSetCurrent(server);
  client->mrs[0] = 0;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr), KernelExit::kDone);
  EXPECT_EQ(server->state, ThreadState::kBlockedOnRecv);
  EXPECT_EQ(client->mrs[0], 0u) << "reply must not be delivered twice";
  sys.kernel().CheckInvariants();
}

TEST(SplitSendReceiveTest, HalvesTheSendReceivePathBound) {
  const auto atomic_img = BuildKernelImage(KernelConfig::After());
  const auto split_img = BuildKernelImage(SplitRr());
  const auto rr_only = [](const KernelImage& img) {
    AnalysisOptions ao;
    for (const BlockId b : {img.b.sys.do_call, img.b.sys.do_send, img.b.sys.do_recv,
                            img.b.sys.do_yield, img.b.sys.fast_do}) {
      if (b == kNoBlock) {
        continue;
      }
      ManualConstraint mc;
      mc.kind = ManualConstraint::Kind::kExecutes;
      mc.a = b;
      mc.n = 0;
      ao.constraints.push_back(mc);
    }
    return ao;
  };
  WcetAnalyzer a_atomic(*atomic_img, rr_only(*atomic_img));
  WcetAnalyzer a_split(*split_img, rr_only(*split_img));
  const Cycles atomic = a_atomic.Analyze(EntryPoint::kSyscall).wcet;
  const Cycles split = a_split.Analyze(EntryPoint::kSyscall).wcet;
  // "Could be almost halved" (Section 6.1).
  EXPECT_LT(split, atomic * 6 / 10);
  EXPECT_GT(split, atomic * 3 / 10);
}

TEST(L2KernelPinningTest, ComputedInterruptBoundBeatsEvenL2Off) {
  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions l2_off;
  AnalysisOptions pinned;
  pinned.l2_enabled = true;
  pinned.l2_kernel_pinning = true;
  WcetAnalyzer a_off(*img, l2_off);
  WcetAnalyzer a_pin(*img, pinned);
  // The interrupt path touches almost only kernel text/data: every miss at
  // 26 instead of 60 cycles beats even the L2-off configuration.
  EXPECT_LT(a_pin.Analyze(EntryPoint::kInterrupt).wcet,
            a_off.Analyze(EntryPoint::kInterrupt).wcet);
}

TEST(L2KernelPinningTest, ObservedRunsBoundedByPinnedAnalysis) {
  System sys(KernelConfig::After(), EvalMachine(true));
  const std::size_t pinned = sys.kernel().ApplyL2KernelPinning();
  EXPECT_GT(pinned, 200u);  // text + data + stack lines

  AnalysisOptions ao;
  ao.l2_enabled = true;
  ao.l2_kernel_pinning = true;
  WcetAnalyzer an(sys.kernel().image(), ao);
  const Cycles bound = an.Analyze(EntryPoint::kSyscall).wcet;

  auto w = sys.BuildWorstCaseIpc();
  sys.machine().PolluteCaches();
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
  EXPECT_LE(sys.machine().Now() - t0, bound);
}

TEST(L2KernelPinningTest, PinnedLinesSurvivePollution) {
  System sys(KernelConfig::After(), EvalMachine(true));
  sys.kernel().ApplyL2KernelPinning();
  sys.machine().PolluteCaches();
  // A kernel-text line: evicted from L1 by pollution but locked in the L2.
  EXPECT_TRUE(sys.machine().l2().Contains(Program::kTextBase));
}

}  // namespace
}  // namespace pmk
