// IPC tests: message transfer, badges, capability grant, notification
// latching, fastpath eligibility boundaries, reply semantics and fault IPC.

#include <gtest/gtest.h>

#include "src/sim/workload.h"

namespace pmk {
namespace {

class IpcTest : public ::testing::Test {
 protected:
  System sys{KernelConfig::After(), EvalMachine(false)};
};

TEST_F(IpcTest, MessageRegistersCopied) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  for (std::uint32_t i = 0; i < 8; ++i) {
    send->mrs[i] = 100 + i;
  }
  SyscallArgs args;
  args.msg_len = 8;
  sys.kernel().Syscall(SysOp::kSend, cptr, args);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(recv->mrs[i], 100 + i) << i;
  }
}

TEST_F(IpcTest, ZeroLengthMessageDelivers) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  SyscallArgs args;
  args.msg_len = 0;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, cptr, args), KernelExit::kDone);
  EXPECT_EQ(recv->state, ThreadState::kRunning);
  EXPECT_EQ(recv->msg_len, 0u);
}

TEST_F(IpcTest, FullLengthMessageDelivers) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  SyscallArgs args;
  args.msg_len = KernelConfig::kMaxMsgWords;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, cptr, args), KernelExit::kDone);
  EXPECT_EQ(recv->msg_len, KernelConfig::kMaxMsgWords);
}

TEST_F(IpcTest, BadgeDeliveredToReceiver) {
  EndpointObj* ep = nullptr;
  const std::uint32_t plain = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(plain)->cap;
  badged.badge = 0xB0B;
  const std::uint32_t cptr = sys.AddCap(badged, sys.SlotOf(plain));

  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  SyscallArgs args;
  args.msg_len = 5;  // skip fastpath so the slowpath badge handling runs
  sys.kernel().Syscall(SysOp::kSend, cptr, args);
  EXPECT_EQ(recv->recv_badge, 0xB0Bu);
}

TEST_F(IpcTest, QueuedSenderBadgeDeliveredOnRecv) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* sender = sys.AddThread(10);
  sys.kernel().DirectBlockOnSend(sender, ep, 77);
  TcbObj* recv = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(recv);
  sys.kernel().Syscall(SysOp::kRecv, cptr, SyscallArgs{});
  EXPECT_EQ(recv->recv_badge, 77u);
  EXPECT_EQ(sender->state, ThreadState::kRunning);
}

TEST_F(IpcTest, SendersQueueInFifoOrder) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  auto senders = sys.QueueSenders(ep, 3, {1, 2, 3});
  // Higher priority than the woken senders so no direct switch happens and
  // the receiver stays current across the three Recvs.
  TcbObj* recv = sys.AddThread(20);
  sys.kernel().DirectSetCurrent(recv);
  sys.kernel().Syscall(SysOp::kRecv, cptr, SyscallArgs{});
  EXPECT_EQ(recv->recv_badge, 1u);
  sys.kernel().Syscall(SysOp::kRecv, cptr, SyscallArgs{});
  EXPECT_EQ(recv->recv_badge, 2u);
  EXPECT_EQ(ep->q_len, 1u);
  (void)senders;
}

TEST_F(IpcTest, CapGrantTransfersDerivedCap) {
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  EndpointObj* granted = nullptr;
  const std::uint32_t granted_cptr = sys.AddEndpoint(&granted);

  TcbObj* recv = sys.AddThread(10);
  recv->recv_slot = 150;
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);

  SyscallArgs args;
  args.msg_len = 6;
  args.n_extra = 1;
  args.extra_caps[0] = granted_cptr;
  sys.kernel().Syscall(SysOp::kSend, ep_cptr, args);

  const CapSlot& dest = sys.root()->slots[150];
  ASSERT_FALSE(dest.IsNull());
  EXPECT_EQ(dest.cap.type, ObjType::kEndpoint);
  EXPECT_EQ(dest.cap.obj, granted->base);
  // Derived: a child of the source cap in the MDB.
  EXPECT_EQ(dest.mdb_prev, sys.SlotOf(granted_cptr));
  sys.kernel().CheckInvariants();
}

TEST_F(IpcTest, GrantWithoutGrantRightIsDropped) {
  EndpointObj* ep = nullptr;
  const std::uint32_t plain = sys.AddEndpoint(&ep);
  Cap nogrant = sys.SlotOf(plain)->cap;
  nogrant.rights.grant = false;
  const std::uint32_t cptr = sys.AddCap(nogrant, sys.SlotOf(plain));
  EndpointObj* payload = nullptr;
  const std::uint32_t payload_cptr = sys.AddEndpoint(&payload);

  TcbObj* recv = sys.AddThread(10);
  recv->recv_slot = 151;
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);

  SyscallArgs args;
  args.msg_len = 6;
  args.n_extra = 1;
  args.extra_caps[0] = payload_cptr;
  sys.kernel().Syscall(SysOp::kSend, cptr, args);
  EXPECT_TRUE(sys.root()->slots[151].IsNull());
}

TEST_F(IpcTest, OccupiedReceiveSlotIsNotOverwritten) {
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  EndpointObj* payload = nullptr;
  const std::uint32_t payload_cptr = sys.AddEndpoint(&payload);

  TcbObj* recv = sys.AddThread(10);
  recv->recv_slot = 152;
  Cap occupier;
  occupier.type = ObjType::kEndpoint;
  occupier.obj = ep->base;
  sys.kernel().DirectCap(sys.root(), 152, occupier);

  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  SyscallArgs args;
  args.msg_len = 6;
  args.n_extra = 1;
  args.extra_caps[0] = payload_cptr;
  sys.kernel().Syscall(SysOp::kSend, ep_cptr, args);
  EXPECT_EQ(sys.root()->slots[152].cap.obj, ep->base);  // untouched
  sys.kernel().CheckInvariants();
}

TEST_F(IpcTest, ReplyWakesCaller) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs call;
  call.msg_len = 6;
  sys.kernel().Syscall(SysOp::kCall, cptr, call);
  ASSERT_EQ(sys.kernel().current(), server);

  server->mrs[0] = 0xFEED;
  SyscallArgs rr;
  rr.msg_len = 1;
  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr);
  EXPECT_EQ(client->state, ThreadState::kRunning);
  EXPECT_EQ(client->mrs[0], 0xFEEDu);
  EXPECT_EQ(server->state, ThreadState::kBlockedOnRecv);
  EXPECT_EQ(server->reply_to, nullptr);
}

TEST_F(IpcTest, ReplyRecvWithNoCallerStillWaits) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  sys.kernel().DirectSetCurrent(server);
  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, SyscallArgs{});
  EXPECT_EQ(server->state, ThreadState::kBlockedOnRecv);
  EXPECT_EQ(sys.kernel().current(), sys.kernel().idle());
}

TEST_F(IpcTest, NotificationLatchedWhenNobodyWaits) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBindIrq(4, ep);
  sys.kernel().DirectSetCurrent(task);

  sys.machine().irq().Assert(4, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  EXPECT_NE(ep->pending_notifications, 0u);
  EXPECT_EQ(sys.kernel().current(), task);  // nothing woke

  // The next Recv consumes the latched notification without blocking.
  sys.kernel().Syscall(SysOp::kRecv, cptr, SyscallArgs{});
  EXPECT_EQ(task->state, ThreadState::kRunning);
  EXPECT_EQ(task->recv_badge, 5u);  // line + 1
  EXPECT_EQ(ep->pending_notifications, 0u);
}

TEST_F(IpcTest, FastpathRequiresShortMessage) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs args;
  args.msg_len = 5;  // > 4 registers
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(sys.kernel().fastpath_hits(), 0u);
  EXPECT_EQ(sys.kernel().current(), server);  // slowpath still worked
}

TEST_F(IpcTest, FastpathRequiresNoExtraCaps) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  EndpointObj* other = nullptr;
  const std::uint32_t other_cptr = sys.AddEndpoint(&other);
  TcbObj* server = sys.AddThread(60);
  server->recv_slot = 160;
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs args;
  args.msg_len = 2;
  args.n_extra = 1;
  args.extra_caps[0] = other_cptr;
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(sys.kernel().fastpath_hits(), 0u);
  EXPECT_FALSE(sys.root()->slots[160].IsNull());  // slowpath granted the cap
}

TEST_F(IpcTest, FastpathRequiresWaitingReceiver) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs args;
  args.msg_len = 2;
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(sys.kernel().fastpath_hits(), 0u);
  EXPECT_EQ(client->state, ThreadState::kBlockedOnSend);
}

TEST_F(IpcTest, FastpathRequiresReceiverPriority) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(5);  // lower priority than client
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs args;
  args.msg_len = 2;
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(sys.kernel().fastpath_hits(), 0u);
}

TEST_F(IpcTest, FastpathCheaperThanSlowpath) {
  // Section 6.1: the fastpath is an order of magnitude faster and is not
  // affected by the preemption-point work.
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs fast;
  fast.msg_len = 2;
  // Warm caches: one throwaway round trip.
  sys.kernel().Syscall(SysOp::kCall, cptr, fast);
  SyscallArgs rr;
  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr);

  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, cptr, fast);
  const Cycles fast_cost = sys.machine().Now() - t0;
  EXPECT_EQ(sys.kernel().fastpath_hits(), 2u);

  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr);
  SyscallArgs slow;
  slow.msg_len = 8;
  const Cycles t1 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, cptr, slow);
  const Cycles slow_cost = sys.machine().Now() - t1;
  EXPECT_LT(fast_cost, slow_cost);
  EXPECT_LT(fast_cost, 400u);  // roughly the paper's 200-250 cycles
}

TEST_F(IpcTest, SendToDeactivatedEndpointAborts) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  ep->active = false;
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.msg_len = 6;
  sys.kernel().Syscall(SysOp::kSend, cptr, args);
  EXPECT_EQ(t->last_error, KError::kDeleted);
  EXPECT_EQ(t->state, ThreadState::kRunning);  // not queued
}

TEST_F(IpcTest, FaultMessageBlocksFaulterOnReply) {
  EndpointObj* ep = nullptr;
  const std::uint32_t fcptr = sys.AddEndpoint(&ep);
  TcbObj* pager = sys.AddThread(100);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(pager, ep);
  task->fault_handler_cptr = fcptr;
  sys.kernel().DirectSetCurrent(task);
  sys.kernel().RaisePageFault();
  EXPECT_EQ(task->state, ThreadState::kBlockedOnReply);
  EXPECT_EQ(pager->reply_to, task);
  // Pager handles the fault and replies: task resumes.
  sys.kernel().Syscall(SysOp::kReplyRecv, fcptr, SyscallArgs{});
  EXPECT_EQ(task->state, ThreadState::kRunning);
}

TEST_F(IpcTest, FaultWithNoWaitingPagerQueues) {
  EndpointObj* ep = nullptr;
  const std::uint32_t fcptr = sys.AddEndpoint(&ep);
  TcbObj* task = sys.AddThread(10);
  task->fault_handler_cptr = fcptr;
  sys.kernel().DirectSetCurrent(task);
  sys.kernel().RaisePageFault();
  EXPECT_EQ(task->state, ThreadState::kBlockedOnSend);
  EXPECT_EQ(ep->q_head, task);
  EXPECT_TRUE(task->blocked_is_call);
}

}  // namespace
}  // namespace pmk
