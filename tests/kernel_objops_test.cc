// Object-operation tests: untyped retype with preemptible clearing
// (Section 3.5), capability deletion/revocation, preemptible endpoint
// cancellation (Section 3.3) and badged-IPC abort with the four-field resume
// state (Section 3.4) — including the restartable-system-call behaviour
// under a periodic interrupt, with the kernel invariants checked at every
// preemption point.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

std::uint32_t CNodeCptrFor(System& sys) {
  Cap c;
  c.type = ObjType::kCNode;
  c.obj = sys.root()->base;
  return sys.AddCap(c);
}

TEST(RetypeTest, WatermarkAdvancesAndAligns) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  UntypedObj* ut = nullptr;
  const std::uint32_t ut_cptr = sys.AddUntyped(16, &ut);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs mk_ep;
  mk_ep.label = InvLabel::kUntypedRetype;
  mk_ep.obj_type = ObjType::kEndpoint;
  mk_ep.dest_index = 70;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, mk_ep), KernelExit::kDone);
  EXPECT_EQ(ut->watermark, ut->base + 16);  // endpoint: 16 bytes

  // A TCB (512 B) must start at a 512-aligned address, skipping a gap.
  SyscallArgs mk_tcb = mk_ep;
  mk_tcb.obj_type = ObjType::kTcb;
  mk_tcb.dest_index = 71;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, mk_tcb), KernelExit::kDone);
  const CapSlot& slot = sys.root()->slots[71];
  EXPECT_EQ(slot.cap.obj % 512, 0u);
  EXPECT_EQ(ut->watermark, slot.cap.obj + 512);
  sys.kernel().CheckInvariants();
}

TEST(RetypeTest, ExhaustedUntypedFails) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(9, nullptr);  // 512 B total
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kTcb;  // 512 B: fits exactly once
  args.dest_index = 70;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
  EXPECT_EQ(t->last_error, KError::kOk);
  args.dest_index = 71;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
  EXPECT_TRUE(sys.root()->slots[71].IsNull());
}

TEST(RetypeTest, TooLargeObjectRejected) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(24, nullptr);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 24;  // above max_object_bits
  args.dest_index = 70;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
}

TEST(RetypeTest, OccupiedDestinationRejected) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(16, nullptr);
  EndpointObj* ep = nullptr;
  const std::uint32_t occupied = sys.AddEndpoint(&ep);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.dest_index = occupied & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
}

TEST(RetypeTest, NewCapIsMdbChildOfUntyped) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(16, nullptr);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.dest_index = 70;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  CapSlot* ut_slot = sys.SlotOf(ut_cptr);
  CapSlot* child = &sys.root()->slots[70];
  EXPECT_EQ(child->mdb_prev, ut_slot);
  EXPECT_EQ(child->mdb_depth, ut_slot->mdb_depth + 1);
  EXPECT_TRUE(Mdb::HasChildren(ut_slot));
}

TEST(RetypeTest, PreemptibleClearRestartsAndCompletes) {
  // Section 3.5: a large clear is preempted by a periodic timer; the syscall
  // restarts and resumes from the stored progress. Invariants must hold at
  // every preemption point.
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  UntypedObj* ut = nullptr;
  const std::uint32_t ut_cptr = sys.AddUntyped(19, &ut);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;  // 256 KiB -> 256 chunks
  args.dest_index = 70;

  // Timer fires every ~3 chunk-times.
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 8000);
  EXPECT_GT(res.preemptions, 5u);
  EXPECT_EQ(t->last_error, KError::kOk);
  EXPECT_FALSE(sys.root()->slots[70].IsNull());
  EXPECT_FALSE(ut->retype_active);
  sys.kernel().CheckInvariants();
  // Response time stays bounded: far below one chunk-free clear.
  EXPECT_LT(res.max_irq_latency, 10'000u);
}

TEST(RetypeTest, NonPreemptibleClearIgnoresPendingIrq) {
  // The "before" kernel finishes the whole clear with the interrupt pending.
  System sys(KernelConfig::Before(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 8000);
  EXPECT_EQ(res.preemptions, 0u);
  EXPECT_FALSE(sys.root()->slots[70].IsNull());
  EXPECT_EQ(t->last_error, KError::kOk);
}

TEST(RetypeTest, PageDirectoryGetsGlobalMappings) {
  for (const VSpaceKind vk : {VSpaceKind::kShadow, VSpaceKind::kAsid}) {
    KernelConfig kc = KernelConfig::After();
    kc.vspace = vk;
    System sys(kc, EvalMachine(false));
    TcbObj* t = sys.AddThread(10);
    const std::uint32_t ut_cptr = sys.AddUntyped(17, nullptr);
    sys.kernel().DirectSetCurrent(t);
    SyscallArgs args;
    args.label = InvLabel::kUntypedRetype;
    args.obj_type = ObjType::kPageDir;
    args.dest_index = 70;
    ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
    ASSERT_EQ(t->last_error, KError::kOk);
    PageDirObj* pd = sys.kernel().objects().Get<PageDirObj>(sys.root()->slots[70].cap.obj);
    ASSERT_NE(pd, nullptr);
    EXPECT_TRUE(pd->global_mappings_present);  // the Section 3.5 invariant
  }
}

TEST(DeleteTest, NonFinalCapJustUnlinks) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  const std::uint32_t copy_cptr = sys.AddCap(sys.SlotOf(ep_cptr)->cap, sys.SlotOf(ep_cptr));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = copy_cptr & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_TRUE(sys.SlotOf(copy_cptr)->IsNull());
  EXPECT_NE(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);  // survives
  EXPECT_TRUE(ep->active);
  sys.kernel().CheckInvariants();
}

TEST(DeleteTest, FinalEndpointCapDestroysAndAborts) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  auto senders = sys.QueueSenders(ep, 5, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);
  for (TcbObj* s : senders) {
    EXPECT_EQ(s->state, ThreadState::kRestart);
    EXPECT_TRUE(s->in_run_queue);  // restarted threads are runnable
  }
  sys.kernel().CheckInvariants();
}

TEST(DeleteTest, PreemptedEndpointDeleteRestartsToCompletion) {
  // Section 3.3: deletion preempts after each dequeued thread; forward
  // progress is guaranteed by deactivating the endpoint first.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  auto senders = sys.QueueSenders(ep, 64, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 3000);
  EXPECT_GT(res.preemptions, 2u);
  EXPECT_EQ(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);
  EXPECT_TRUE(sys.SlotOf(ep_cptr)->IsNull());
  for (TcbObj* s : senders) {
    EXPECT_EQ(s->state, ThreadState::kRestart);
  }
  sys.kernel().CheckInvariants();
}

TEST(DeleteTest, MidDeleteEndpointRefusesNewIpc) {
  // Forward progress: once deactivated, threads cannot re-queue on the
  // endpoint even between preemptions.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  sys.QueueSenders(ep, 16, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  // Preempt the delete once by asserting the (bound-free) timer line.
  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  sys.machine().timer().set_period(2500);
  sys.machine().timer().Restart(sys.machine().Now());
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  const KernelExit e = sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  sys.machine().timer().set_period(0);
  ASSERT_EQ(e, KernelExit::kPreempted);
  EXPECT_FALSE(ep->active);

  // Another thread attempts IPC on the half-deleted endpoint: refused.
  TcbObj* intruder = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(intruder);
  SyscallArgs send;
  send.msg_len = 6;
  sys.kernel().Syscall(SysOp::kSend, ep_cptr, send);
  EXPECT_EQ(intruder->last_error, KError::kDeleted);
  EXPECT_EQ(intruder->state, ThreadState::kRunning);
  sys.kernel().CheckInvariants();
}

TEST(RevokeTest, RemovesAllDescendants) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  CapSlot* root_slot = sys.SlotOf(ep_cptr);
  std::vector<std::uint32_t> copies;
  for (int i = 0; i < 6; ++i) {
    copies.push_back(sys.AddCap(root_slot->cap, root_slot));
  }
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = ep_cptr & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  for (const std::uint32_t c : copies) {
    EXPECT_TRUE(sys.SlotOf(c)->IsNull());
  }
  EXPECT_FALSE(root_slot->IsNull());  // the revoked cap itself survives
  EXPECT_FALSE(Mdb::HasChildren(root_slot));
  sys.kernel().CheckInvariants();
}

TEST(RevokeTest, BadgedRevokeStoresResumeStateAcrossPreemption) {
  // Section 3.4: the four-field resume state lives on the endpoint, and the
  // operation completes across restarts without rescanning aborted work.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 9;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));

  auto senders = sys.QueueSenders(ep, 48, {9, 4});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = badged_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 2500);
  EXPECT_GT(res.preemptions, 1u);
  EXPECT_FALSE(ep->abort.valid);  // resume state cleared on completion
  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(senders[i]->state, ThreadState::kRestart) << i;
    } else {
      EXPECT_EQ(senders[i]->state, ThreadState::kBlockedOnSend) << i;
    }
  }
  // Revoke removes descendants; the revoked badge cap itself survives so
  // the server can re-issue it (Section 3.4).
  EXPECT_FALSE(sys.SlotOf(badged_cptr)->IsNull());
  EXPECT_FALSE(Mdb::HasChildren(sys.SlotOf(badged_cptr)));
  sys.kernel().CheckInvariants();
}

TEST(RevokeTest, NewWaitersAfterAbortStartAreNotScanned) {
  // Field 2 of the resume state: the end marker fixed when the operation
  // commenced keeps later arrivals out of the scan.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 9;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  auto senders = sys.QueueSenders(ep, 24, {9});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  // Preempt the abort once.
  sys.machine().timer().set_period(2500);
  sys.machine().timer().Restart(sys.machine().Now());
  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = badged_cptr & 0xFF;
  const KernelExit e = sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  sys.machine().timer().set_period(0);
  ASSERT_EQ(e, KernelExit::kPreempted);
  ASSERT_TRUE(ep->abort.valid);

  // A straggler with the same badge arrives mid-abort (the endpoint is
  // still active: only the badge is being revoked).
  TcbObj* straggler = sys.AddThread(10);
  sys.kernel().DirectBlockOnSend(straggler, ep, 9);

  sys.machine().irq().Unmask(InterruptController::kTimerLine);
  while (sys.kernel().Syscall(SysOp::kCall, root_cptr, args) == KernelExit::kPreempted) {
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
  }
  EXPECT_EQ(straggler->state, ThreadState::kBlockedOnSend);  // not scanned
  for (TcbObj* s : senders) {
    EXPECT_EQ(s->state, ThreadState::kRestart);
  }
  sys.kernel().CheckInvariants();
}

TEST(RevokeTest, SecondAborterCompletesStoredOperation) {
  // Field 4: another thread invoking a badged abort on the same endpoint
  // first completes the stored (preempted) operation.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 9;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  auto senders = sys.QueueSenders(ep, 24, {9});
  TcbObj* t1 = sys.AddThread(10);
  TcbObj* t2 = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t1);

  sys.machine().timer().set_period(2500);
  sys.machine().timer().Restart(sys.machine().Now());
  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = badged_cptr & 0xFF;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, root_cptr, args), KernelExit::kPreempted);
  sys.machine().timer().set_period(0);
  ASSERT_TRUE(ep->abort.valid);
  EXPECT_EQ(ep->abort.aborter, t1);

  // t2 now performs the same revoke: it must finish t1's scan first.
  sys.kernel().DirectSetCurrent(t2);
  sys.machine().irq().Unmask(InterruptController::kTimerLine);
  while (sys.kernel().Syscall(SysOp::kCall, root_cptr, args) == KernelExit::kPreempted) {
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
  }
  EXPECT_FALSE(ep->abort.valid);
  for (TcbObj* s : senders) {
    EXPECT_EQ(s->state, ThreadState::kRestart);
  }
  sys.kernel().CheckInvariants();
}

TEST(MintTest, BadgedCopyBecomesChild) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeMint;
  args.arg0 = ep_cptr;
  args.dest_index = 99;
  args.badge = 0x42;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  ASSERT_EQ(t->last_error, KError::kOk);
  const CapSlot& minted = sys.root()->slots[99];
  ASSERT_FALSE(minted.IsNull());
  EXPECT_EQ(minted.cap.badge, 0x42u);
  EXPECT_EQ(minted.mdb_prev, sys.SlotOf(ep_cptr));
  sys.kernel().CheckInvariants();
}

TEST(MintTest, RebadgingABadgedCapRejected) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 7;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeMint;
  args.arg0 = badged_cptr;
  args.dest_index = 99;
  args.badge = 0x42;  // different badge: unforgeability would break
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
  EXPECT_TRUE(sys.root()->slots[99].IsNull());
}

TEST(DeleteTest, TcbDeleteDequeuesFromEndpointAndScheduler) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* victim = sys.AddThread(30);
  sys.kernel().DirectBlockOnSend(victim, ep, 1);
  Cap tcb_cap;
  tcb_cap.type = ObjType::kTcb;
  tcb_cap.obj = victim->base;
  const std::uint32_t victim_cptr = sys.AddCap(tcb_cap);
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = victim_cptr & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(sys.kernel().objects().Get<TcbObj>(tcb_cap.obj), nullptr);
  EXPECT_EQ(ep->q_len, 0u);
  sys.kernel().CheckInvariants();
}

TEST(InvariantSweepTest, PreemptedOpsKeepInvariantsAtEveryPoint) {
  // Incremental consistency (Section 2.1): at EVERY preemption of a long
  // operation, the whole-kernel invariants hold.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  sys.QueueSenders(ep, 40, {3, 5});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = CNodeCptrFor(sys);
  sys.machine().timer().set_period(2000);
  sys.machine().timer().Restart(sys.machine().Now());
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  std::uint32_t preemptions = 0;
  for (;;) {
    const KernelExit e = sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
    ASSERT_NO_THROW(sys.kernel().CheckInvariants()) << "after preemption " << preemptions;
    if (e != KernelExit::kPreempted) {
      break;
    }
    preemptions++;
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
  }
  sys.machine().timer().set_period(0);
  EXPECT_GT(preemptions, 3u);
  EXPECT_EQ(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);
}

}  // namespace
}  // namespace pmk

namespace pmk {
namespace {

TEST(RetypeTest, MultiObjectRetypeCreatesContiguousBatch) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  UntypedObj* ut = nullptr;
  const std::uint32_t ut_cptr = sys.AddUntyped(16, &ut);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.obj_count = 5;
  args.dest_index = 80;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
  ASSERT_EQ(t->last_error, KError::kOk);
  Addr prev = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const CapSlot& slot = sys.root()->slots[80 + i];
    ASSERT_FALSE(slot.IsNull()) << i;
    EXPECT_EQ(slot.cap.type, ObjType::kEndpoint);
    EXPECT_NE(sys.kernel().objects().Get<EndpointObj>(slot.cap.obj), nullptr);
    EXPECT_EQ(slot.mdb_depth, sys.SlotOf(ut_cptr)->mdb_depth + 1);
    if (i > 0) {
      EXPECT_EQ(slot.cap.obj, prev + 16);  // contiguous 16-byte endpoints
    }
    prev = slot.cap.obj;
  }
  EXPECT_EQ(ut->watermark, ut->base + 5 * 16);
  sys.kernel().CheckInvariants();
}

TEST(RetypeTest, MultiObjectRetypeRejectsOccupiedDest) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(16);
  EndpointObj* blocker = nullptr;
  sys.AddEndpoint(&blocker);
  Cap c;
  c.type = ObjType::kEndpoint;
  c.obj = blocker->base;
  sys.kernel().DirectCap(sys.root(), 82, c);  // occupies the middle slot
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.obj_count = 5;
  args.dest_index = 80;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
  EXPECT_TRUE(sys.root()->slots[80].IsNull());  // nothing partially created
  EXPECT_TRUE(sys.root()->slots[81].IsNull());
  sys.kernel().CheckInvariants();
}

TEST(RetypeTest, BatchSizeBoundedByClosedSystemLimit) {
  // The batch shares the single-object size budget so the clearing loop's
  // analysis bound stays count-independent.
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(23);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;  // 4 x 256 KiB = 1 MiB > the 512 KiB batch budget
  args.obj_count = 4;
  args.dest_index = 80;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  EXPECT_EQ(t->last_error, KError::kInvalidArg);
  args.obj_count = 2;  // exactly the budget
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
  EXPECT_EQ(t->last_error, KError::kOk);
}

TEST(CopyMoveTest, CopyPreservesBadgeAsSibling) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 33;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  SyscallArgs args;
  args.label = InvLabel::kCNodeCopy;
  args.arg0 = badged_cptr;
  args.dest_index = 120;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  ASSERT_EQ(t->last_error, KError::kOk);
  const CapSlot& copy = sys.root()->slots[120];
  ASSERT_FALSE(copy.IsNull());
  EXPECT_EQ(copy.cap.badge, 33u);  // badge preserved, no re-badging
  EXPECT_EQ(copy.mdb_depth, sys.SlotOf(badged_cptr)->mdb_depth);  // sibling
  sys.kernel().CheckInvariants();
}

TEST(CopyMoveTest, MoveTransfersSlotAndClearsSource) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  SyscallArgs args;
  args.label = InvLabel::kCNodeMove;
  args.arg0 = ep_cptr;
  args.dest_index = 121;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  ASSERT_EQ(t->last_error, KError::kOk);
  EXPECT_TRUE(sys.SlotOf(ep_cptr)->IsNull());
  const CapSlot& moved = sys.root()->slots[121];
  ASSERT_FALSE(moved.IsNull());
  EXPECT_EQ(moved.cap.obj, ep->base);
  // The moved cap is still final: deleting it destroys the endpoint.
  EXPECT_TRUE(Mdb::IsFinal(&moved));
  sys.kernel().CheckInvariants();
}

TEST(CopyMoveTest, MovePreservesDescendants) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 5;
  const std::uint32_t child_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  SyscallArgs args;
  args.label = InvLabel::kCNodeMove;
  args.arg0 = ep_cptr;
  args.dest_index = 122;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  ASSERT_EQ(t->last_error, KError::kOk);
  const CapSlot& moved = sys.root()->slots[122];
  EXPECT_TRUE(Mdb::HasChildren(&moved));
  EXPECT_EQ(Mdb::FirstDescendant(&moved), sys.SlotOf(child_cptr));
  sys.kernel().CheckInvariants();
}

}  // namespace
}  // namespace pmk
