// Scheduler tests: lazy scheduling (Figure 2), Benno scheduling (Figure 3),
// the two-level priority bitmap (Section 3.2), direct switching, and
// property-style random-operation sweeps that check the proof invariants
// after every kernel entry.

#include <gtest/gtest.h>

#include <random>

#include "src/sim/workload.h"

namespace pmk {
namespace {

KernelConfig Benno() { return KernelConfig::After(); }

KernelConfig BennoNoBitmap() {
  KernelConfig c = KernelConfig::After();
  c.scheduler_bitmap = false;
  return c;
}

KernelConfig Lazy() { return KernelConfig::Before(); }

TEST(SchedBitmapTest, BitmapTracksQueues) {
  System sys(Benno(), EvalMachine(false));
  TcbObj* a = sys.AddThread(7);    // bucket 0, bit 7
  TcbObj* b = sys.AddThread(200);  // bucket 6, bit 8
  sys.kernel().DirectResume(a);
  sys.kernel().DirectResume(b);
  EXPECT_EQ(sys.kernel().bitmap_l1(), (1u << 0) | (1u << 6));
  EXPECT_EQ(sys.kernel().bitmap_l2(0), 1u << 7);
  EXPECT_EQ(sys.kernel().bitmap_l2(6), 1u << (200 % 32));
  sys.kernel().CheckInvariants();
}

TEST(SchedBitmapTest, HighestPriorityWinsAcrossBuckets) {
  System sys(Benno(), EvalMachine(false));
  TcbObj* low = sys.AddThread(3);
  TcbObj* high = sys.AddThread(250);
  TcbObj* cur = sys.AddThread(1);
  sys.kernel().DirectResume(low);
  sys.kernel().DirectResume(high);
  sys.kernel().DirectSetCurrent(cur);
  // Yield forces a full reschedule.
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  EXPECT_EQ(sys.kernel().current(), high);
  sys.kernel().CheckInvariants();
}

TEST(SchedBitmapTest, BitmapVariantsAgreeOnChosenThread) {
  for (const KernelConfig& kc : {Benno(), BennoNoBitmap()}) {
    System sys(kc, EvalMachine(false));
    TcbObj* a = sys.AddThread(12);
    TcbObj* b = sys.AddThread(90);
    TcbObj* cur = sys.AddThread(5);
    sys.kernel().DirectResume(a);
    sys.kernel().DirectResume(b);
    sys.kernel().DirectSetCurrent(cur);
    sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
    EXPECT_EQ(sys.kernel().current(), b);
    sys.kernel().CheckInvariants();
  }
}

TEST(SchedBennoTest, DirectSwitchOnWakeSkipsRunQueue) {
  // Section 3.1: a thread woken by IPC that can run immediately is switched
  // to directly and never enters the run queue.
  System sys(Benno(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(50);
  TcbObj* client = sys.AddThread(50);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  SyscallArgs args;
  args.msg_len = 6;  // avoid the fastpath to exercise the slowpath switch
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(sys.kernel().current(), server);
  EXPECT_FALSE(server->in_run_queue);  // woken via direct switch
  sys.kernel().CheckInvariants();
}

TEST(SchedBennoTest, LowerPriorityWakeIsEnqueuedNotSwitched) {
  System sys(Benno(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(10);  // lower than client
  TcbObj* client = sys.AddThread(50);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  SyscallArgs args;
  args.msg_len = 1;
  sys.kernel().Syscall(SysOp::kSend, cptr, args);
  EXPECT_EQ(sys.kernel().current(), client);  // sender keeps running
  EXPECT_TRUE(server->in_run_queue);
  sys.kernel().CheckInvariants();
}

TEST(SchedBennoTest, PreemptedThreadReentersQueueLazily) {
  // The run queue's consistency is "re-established at preemption time":
  // the preempted current thread is enqueued when something else runs.
  System sys(Benno(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* handler = sys.AddThread(200);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(handler, ep);
  sys.kernel().DirectBindIrq(0, ep);
  sys.kernel().DirectSetCurrent(task);
  EXPECT_FALSE(task->in_run_queue);

  sys.machine().irq().Assert(0, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  EXPECT_EQ(sys.kernel().current(), handler);
  EXPECT_TRUE(task->in_run_queue);  // re-entered on preemption
  sys.kernel().CheckInvariants();
}

TEST(SchedLazyTest, BlockedThreadStaysInQueue) {
  System sys(Lazy(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* t = sys.AddThread(10);
  TcbObj* other = sys.AddThread(10);
  sys.kernel().DirectResume(other);
  sys.kernel().DirectSetCurrent(t);
  ASSERT_TRUE(t->in_run_queue);  // lazy: current stays queued

  SyscallArgs args;
  sys.kernel().Syscall(SysOp::kSend, cptr, args);  // blocks (no receiver)
  EXPECT_EQ(t->state, ThreadState::kBlockedOnSend);
  // Lazy scheduling's signature: the blocked thread is STILL in the run
  // queue (chooseThread found `other` at the head and never reached it).
  EXPECT_TRUE(t->in_run_queue);
  EXPECT_EQ(sys.kernel().current(), other);
  sys.kernel().CheckInvariants();
}

TEST(SchedLazyTest, WakeSkipsEnqueueWhenStillQueued) {
  System sys(Lazy(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  // A stale receiver: blocked but still in the run queue.
  TcbObj* recv = sys.AddThread(10);
  sys.kernel().DirectResume(recv);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  // Manually leave it in the queue to model the lazy leftover.
  // (DirectBlockOnRecv removed it; emulate via a stale-queue builder.)
  System sys2(Lazy(), EvalMachine(false));
  EndpointObj* ep2 = nullptr;
  const std::uint32_t cptr2 = sys2.AddEndpoint(&ep2);
  auto stale = sys2.MakeStaleRunQueue(ep2, 1, 10);
  TcbObj* sender = sys2.AddThread(10);
  sys2.kernel().DirectSetCurrent(sender);
  ASSERT_TRUE(stale[0]->in_run_queue);

  SyscallArgs args;
  args.msg_len = 1;
  // Sender's send wakes the stale receiver... it is queued for RECV? It was
  // blocked on send in MakeStaleRunQueue; use the badge-free send queue as a
  // wake-via-recv instead.
  sys2.kernel().Syscall(SysOp::kRecv, cptr2, args);
  EXPECT_EQ(stale[0]->state, ThreadState::kRunning);
  EXPECT_TRUE(stale[0]->in_run_queue);  // was already there: no enqueue work
  sys2.kernel().CheckInvariants();
  (void)cptr;
}

TEST(SchedLazyTest, ChooseThreadDequeuesStaleEntries) {
  // Figure 2's pathological case: the scheduler must dequeue a pile of
  // blocked threads before finding a runnable one.
  System sys(Lazy(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  auto stale = sys.MakeStaleRunQueue(ep, 50, 20);
  TcbObj* runnable = sys.AddThread(20);
  sys.kernel().DirectResume(runnable);
  TcbObj* cur = sys.AddThread(5);
  sys.kernel().DirectSetCurrent(cur);

  const Cycles before = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  const Cycles storm_cost = sys.machine().Now() - before;
  EXPECT_EQ(sys.kernel().current(), runnable);
  for (TcbObj* s : stale) {
    EXPECT_FALSE(s->in_run_queue);  // all dequeued by chooseThread
  }

  // The same scenario under Benno has no stale entries to clean up.
  System sys2(Benno(), EvalMachine(false));
  TcbObj* r2 = sys2.AddThread(20);
  sys2.kernel().DirectResume(r2);
  TcbObj* c2 = sys2.AddThread(5);
  sys2.kernel().DirectSetCurrent(c2);
  const Cycles b2 = sys2.machine().Now();
  sys2.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  EXPECT_LT(sys2.machine().Now() - b2, storm_cost / 4)
      << "Benno reschedule should be far cheaper than the lazy dequeue storm";
}

TEST(SchedTest, YieldRoundRobinsEqualPriority) {
  System sys(Benno(), EvalMachine(false));
  TcbObj* a = sys.AddThread(10);
  TcbObj* b = sys.AddThread(10);
  TcbObj* c = sys.AddThread(10);
  sys.kernel().DirectResume(b);
  sys.kernel().DirectResume(c);
  sys.kernel().DirectSetCurrent(a);
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  EXPECT_EQ(sys.kernel().current(), b);
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  EXPECT_EQ(sys.kernel().current(), c);
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  EXPECT_EQ(sys.kernel().current(), a);
  sys.kernel().CheckInvariants();
}

TEST(SchedTest, IdleWhenNothingRunnable) {
  System sys(Benno(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  sys.kernel().Syscall(SysOp::kRecv, cptr, SyscallArgs{});  // blocks
  EXPECT_EQ(sys.kernel().current(), sys.kernel().idle());
  sys.kernel().CheckInvariants();
}

TEST(SchedTest, SetPriorityRequeues) {
  System sys(Benno(), EvalMachine(false));
  TcbObj* worker = sys.AddThread(10);
  sys.kernel().DirectResume(worker);
  TcbObj* cur = sys.AddThread(100);
  sys.kernel().DirectSetCurrent(cur);

  Cap tcb_cap;
  tcb_cap.type = ObjType::kTcb;
  tcb_cap.obj = worker->base;
  const std::uint32_t cptr = sys.AddCap(tcb_cap);
  SyscallArgs args;
  args.label = InvLabel::kTcbSetPriority;
  args.arg0 = 42;
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_EQ(worker->prio, 42);
  EXPECT_EQ(sys.kernel().queue_head(42), worker);
  sys.kernel().CheckInvariants();
}

TEST(SchedTest, SuspendAndResumeViaInvocations) {
  System sys(Benno(), EvalMachine(false));
  TcbObj* worker = sys.AddThread(10);
  sys.kernel().DirectResume(worker);
  TcbObj* cur = sys.AddThread(100);
  sys.kernel().DirectSetCurrent(cur);

  Cap tcb_cap;
  tcb_cap.type = ObjType::kTcb;
  tcb_cap.obj = worker->base;
  const std::uint32_t cptr = sys.AddCap(tcb_cap);

  SyscallArgs sus;
  sus.label = InvLabel::kTcbSuspend;
  sys.kernel().Syscall(SysOp::kCall, cptr, sus);
  EXPECT_EQ(worker->state, ThreadState::kInactive);
  EXPECT_FALSE(worker->in_run_queue);
  sys.kernel().CheckInvariants();

  SyscallArgs res;
  res.label = InvLabel::kTcbResume;
  sys.kernel().Syscall(SysOp::kCall, cptr, res);
  EXPECT_EQ(worker->state, ThreadState::kRunning);
  EXPECT_TRUE(worker->in_run_queue);
  sys.kernel().CheckInvariants();
}

// Property sweep: random scheduler-affecting operations, invariants checked
// after every kernel entry, for both schedulers and both bitmap settings.
class SchedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedPropertyTest, RandomOpsPreserveInvariants) {
  KernelConfig kc;
  switch (GetParam()) {
    case 0:
      kc = Benno();
      break;
    case 1:
      kc = BennoNoBitmap();
      break;
    default:
      kc = Lazy();
      break;
  }
  System sys(kc, EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);

  std::vector<TcbObj*> threads;
  std::vector<std::uint32_t> tcb_cptrs;
  for (int i = 0; i < 12; ++i) {
    TcbObj* t = sys.AddThread(static_cast<std::uint8_t>(1 + (i * 37) % 200));
    sys.kernel().DirectResume(t);
    threads.push_back(t);
    Cap c;
    c.type = ObjType::kTcb;
    c.obj = t->base;
    tcb_cptrs.push_back(sys.AddCap(c));
  }
  sys.kernel().DirectSetCurrent(threads[0]);

  std::mt19937 rng(12345 + GetParam());
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng() % 6);
    const std::size_t victim = rng() % threads.size();
    SyscallArgs args;
    switch (op) {
      case 0:
        sys.kernel().Syscall(SysOp::kYield, 0, args);
        break;
      case 1:
        args.msg_len = rng() % 8;
        sys.kernel().Syscall(SysOp::kSend, ep_cptr, args);
        break;
      case 2:
        sys.kernel().Syscall(SysOp::kRecv, ep_cptr, args);
        break;
      case 3:
        args.label = InvLabel::kTcbSuspend;
        sys.kernel().Syscall(SysOp::kCall, tcb_cptrs[victim], args);
        break;
      case 4:
        args.label = InvLabel::kTcbResume;
        sys.kernel().Syscall(SysOp::kCall, tcb_cptrs[victim], args);
        break;
      case 5:
        args.label = InvLabel::kTcbSetPriority;
        args.arg0 = 1 + rng() % 255;
        sys.kernel().Syscall(SysOp::kCall, tcb_cptrs[victim], args);
        break;
    }
    ASSERT_NO_THROW(sys.kernel().CheckInvariants()) << "step " << step << " op " << op;
    if (sys.kernel().current() == sys.kernel().idle()) {
      // Wake somebody so the sweep keeps making progress.
      TcbObj* t = threads[rng() % threads.size()];
      if (t->state == ThreadState::kInactive) {
        t->state = ThreadState::kRunning;
      }
      if (t->blocked_on == 0 &&
          (t->state == ThreadState::kRunning || t->state == ThreadState::kRestart)) {
        sys.kernel().DirectResume(t);
        sys.kernel().DirectSetCurrent(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedPropertyTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           switch (param_info.param) {
                             case 0:
                               return "BennoBitmap";
                             case 1:
                               return "BennoNoBitmap";
                             default:
                               return "Lazy";
                           }
                         });

}  // namespace
}  // namespace pmk

namespace pmk {
namespace {

TEST(TimesliceTest, RoundRobinsEqualPriorityOnTimerTicks) {
  KernelConfig kc = KernelConfig::After();
  kc.kernel_timer_line = 7;
  kc.timeslice_ticks = 2;
  System sys(kc, EvalMachine(false));
  TcbObj* a = sys.AddThread(10);
  TcbObj* b = sys.AddThread(10);
  sys.kernel().DirectResume(b);
  sys.kernel().DirectSetCurrent(a);

  // Tick 1: timeslice 2 -> 1, no switch.
  sys.machine().irq().Assert(7, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  EXPECT_EQ(sys.kernel().current(), a);
  // Tick 2: timeslice exhausted -> round-robin to b; a requeued at tail.
  sys.machine().irq().Assert(7, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  EXPECT_EQ(sys.kernel().current(), b);
  EXPECT_TRUE(a->in_run_queue);
  EXPECT_EQ(a->timeslice, 2u);  // refilled
  sys.kernel().CheckInvariants();

  // Two more ticks: back to a.
  sys.machine().irq().Assert(7, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  sys.machine().irq().Assert(7, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  EXPECT_EQ(sys.kernel().current(), a);
  sys.kernel().CheckInvariants();
}

TEST(TimesliceTest, HigherPriorityThreadKeepsCpuAcrossTicks) {
  KernelConfig kc = KernelConfig::After();
  kc.kernel_timer_line = 7;
  kc.timeslice_ticks = 1;
  System sys(kc, EvalMachine(false));
  TcbObj* high = sys.AddThread(50);
  TcbObj* low = sys.AddThread(10);
  sys.kernel().DirectResume(low);
  sys.kernel().DirectSetCurrent(high);
  for (int i = 0; i < 4; ++i) {
    sys.machine().irq().Assert(7, sys.machine().Now());
    sys.kernel().HandleIrqEntry();
    EXPECT_EQ(sys.kernel().current(), high) << i;  // fixed-priority wins
  }
  sys.kernel().CheckInvariants();
}

TEST(TimesliceTest, KernelTimerLineStaysUnmasked) {
  KernelConfig kc = KernelConfig::After();
  kc.kernel_timer_line = 7;
  System sys(kc, EvalMachine(false));
  TcbObj* a = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(a);
  sys.machine().irq().Assert(7, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  // The kernel consumed the tick without masking the line: the next tick
  // fires without any IRQAck.
  sys.machine().irq().Assert(7, sys.machine().Now());
  EXPECT_TRUE(sys.machine().irq().AnyPending());
}

}  // namespace
}  // namespace pmk
