// End-to-end smoke tests: every charged kernel entry runs against the
// executor's CFG validation, so these tests verify that the kernel runtime
// and the declared kernel image agree block-for-block — the correspondence
// the paper gets by analyzing the real binary.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

class KernelSmokeTest : public ::testing::TestWithParam<bool> {
 protected:
  // Param: true = "after" kernel, false = "before" kernel.
  KernelConfig Config() const {
    return GetParam() ? KernelConfig::After() : KernelConfig::Before();
  }
};

TEST_P(KernelSmokeTest, BootAndInvariants) {
  System sys(Config(), EvalMachine(false));
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, SendToWaitingReceiverDelivers) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);

  SyscallArgs args;
  args.msg_len = 3;
  send->mrs[0] = 42;
  send->mrs[1] = 43;
  send->mrs[2] = 44;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, cptr, args), KernelExit::kDone);
  EXPECT_EQ(recv->state, ThreadState::kRunning);
  EXPECT_EQ(recv->mrs[0], 42u);
  EXPECT_EQ(recv->mrs[2], 44u);
  EXPECT_EQ(recv->msg_len, 3u);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, SendWithNoReceiverBlocks) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(send);

  SyscallArgs args;
  args.msg_len = 1;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, cptr, args), KernelExit::kDone);
  EXPECT_EQ(send->state, ThreadState::kBlockedOnSend);
  EXPECT_EQ(ep->q_head, send);
  // The sender blocked, so the scheduler picked someone else (idle here).
  EXPECT_EQ(sys.kernel().current(), sys.kernel().idle());
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, CallReplyRecvRoundTrip) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  SyscallArgs args;
  args.msg_len = 8;  // beyond the fastpath's 4-register limit
  client->mrs[0] = 7;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  // Server woken (higher priority => direct switch under Benno).
  EXPECT_EQ(server->state, ThreadState::kRunning);
  EXPECT_EQ(client->state, ThreadState::kBlockedOnReply);
  EXPECT_EQ(server->reply_to, client);
  EXPECT_EQ(sys.kernel().current(), server);
  EXPECT_EQ(server->mrs[0], 7u);
  sys.kernel().CheckInvariants();

  // Server replies and waits for the next request.
  server->mrs[0] = 99;
  SyscallArgs rr;
  rr.msg_len = 1;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kReplyRecv, cptr, rr), KernelExit::kDone);
  EXPECT_EQ(client->state, ThreadState::kRunning);
  EXPECT_EQ(client->mrs[0], 99u);
  EXPECT_EQ(server->state, ThreadState::kBlockedOnRecv);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, FastpathHitsForEligibleCall) {
  KernelConfig kc = Config();
  System sys(kc, EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  SyscallArgs args;
  args.msg_len = 2;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  EXPECT_EQ(sys.kernel().fastpath_hits(), kc.ipc_fastpath ? 1u : 0u);
  EXPECT_EQ(sys.kernel().current(), server);
  EXPECT_EQ(client->state, ThreadState::kBlockedOnReply);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, YieldMovesThreadBehindPeer) {
  System sys(Config(), EvalMachine(false));
  TcbObj* a = sys.AddThread(10);
  TcbObj* b = sys.AddThread(10);
  sys.kernel().DirectResume(a);
  sys.kernel().DirectResume(b);
  sys.kernel().DirectSetCurrent(a);

  ASSERT_EQ(sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{}), KernelExit::kDone);
  EXPECT_EQ(sys.kernel().current(), b);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, DeepCapDecode32Levels) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(10);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);

  Cap target;
  target.type = ObjType::kEndpoint;
  target.obj = ep->base;
  const std::uint32_t cptr = sys.BuildDeepCapSpace(send, target, 32);
  sys.kernel().DirectSetCurrent(send);

  SyscallArgs args;
  args.msg_len = 1;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, cptr, args), KernelExit::kDone);
  EXPECT_EQ(recv->state, ThreadState::kRunning);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, InvalidCapReportsError) {
  System sys(Config(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kSend, 0xDEAD, SyscallArgs{}), KernelExit::kDone);
  EXPECT_EQ(t->last_error, KError::kInvalidCap);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, RetypeCreatesEndpoint) {
  System sys(Config(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(20);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kEndpoint;
  args.dest_index = 77;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
  EXPECT_EQ(t->last_error, KError::kOk);
  const CapSlot& dest = sys.root()->slots[77];
  ASSERT_FALSE(dest.IsNull());
  EXPECT_EQ(dest.cap.type, ObjType::kEndpoint);
  EXPECT_NE(sys.kernel().objects().Get<EndpointObj>(dest.cap.obj), nullptr);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, RetypeLargeFrameCompletes) {
  System sys(Config(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(21);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;  // 256 KiB: 256 clear chunks
  args.dest_index = 78;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, ut_cptr, args), KernelExit::kDone);
  EXPECT_EQ(t->last_error, KError::kOk);
  EXPECT_FALSE(sys.root()->slots[78].IsNull());
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, EndpointDeleteAbortsQueuedSenders) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  auto senders = sys.QueueSenders(ep, 8, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  // Delete the (final) endpoint cap via the root CNode.
  const std::uint32_t root_cptr = sys.AddCap([&] {
    Cap c;
    c.type = ObjType::kCNode;
    c.obj = sys.root()->base;
    return c;
  }());
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, root_cptr, args), KernelExit::kDone);
  for (TcbObj* s : senders) {
    EXPECT_EQ(s->state, ThreadState::kRestart);
    EXPECT_EQ(s->last_error, KError::kAborted);
  }
  EXPECT_EQ(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, BadgedRevokeAbortsOnlyMatchingSenders) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  CapSlot* ep_slot = sys.SlotOf(ep_cptr);

  // Mint a badged cap (badge 5) as a child of the unbadged endpoint cap.
  Cap badged = ep_slot->cap;
  badged.badge = 5;
  const std::uint32_t badged_cptr = sys.AddCap(badged, ep_slot);

  auto senders = sys.QueueSenders(ep, 12, {5, 9});  // alternating badges
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);

  const std::uint32_t root_cptr = sys.AddCap([&] {
    Cap c;
    c.type = ObjType::kCNode;
    c.obj = sys.root()->base;
    return c;
  }());
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = badged_cptr & 0xFF;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, root_cptr, args), KernelExit::kDone);

  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (i % 2 == 0) {  // badge 5
      EXPECT_EQ(senders[i]->state, ThreadState::kRestart) << i;
      EXPECT_EQ(senders[i]->last_error, KError::kAborted) << i;
    } else {  // badge 9 untouched
      EXPECT_EQ(senders[i]->state, ThreadState::kBlockedOnSend) << i;
    }
  }
  // Endpoint itself survives (the unbadged parent cap still exists).
  EXPECT_NE(sys.kernel().objects().Get<EndpointObj>(ep->base), nullptr);
  EXPECT_TRUE(ep->active);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, IrqDeliveryNotifiesBoundEndpoint) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* handler = sys.AddThread(200);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(handler, ep);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, ep);
  sys.kernel().DirectSetCurrent(task);

  sys.machine().irq().Assert(InterruptController::kTimerLine, sys.machine().Now());
  ASSERT_EQ(sys.kernel().HandleIrqEntry(), KernelExit::kDone);
  EXPECT_EQ(handler->state, ThreadState::kRunning);
  // Handler outranks the task: direct switch.
  EXPECT_EQ(sys.kernel().current(), handler);
  ASSERT_EQ(sys.kernel().irq_latencies().size(), 1u);
  EXPECT_GT(sys.kernel().irq_latencies()[0], 0u);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, PageFaultDeliveredToHandler) {
  System sys(Config(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t fault_cptr = sys.AddEndpoint(&ep);
  TcbObj* pager = sys.AddThread(100);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(pager, ep);
  task->fault_handler_cptr = fault_cptr;
  sys.kernel().DirectSetCurrent(task);

  ASSERT_EQ(sys.kernel().RaisePageFault(), KernelExit::kDone);
  EXPECT_EQ(pager->state, ThreadState::kRunning);
  EXPECT_EQ(task->state, ThreadState::kBlockedOnReply);
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, UndefinedInstrWithoutHandlerSuspends) {
  System sys(Config(), EvalMachine(false));
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(task);
  ASSERT_EQ(sys.kernel().RaiseUndefined(), KernelExit::kDone);
  EXPECT_EQ(task->state, ThreadState::kInactive);
  EXPECT_EQ(sys.kernel().current(), sys.kernel().idle());
  sys.kernel().CheckInvariants();
}

TEST_P(KernelSmokeTest, WorstCaseIpcCompletes) {
  System sys(Config(), EvalMachine(false));
  auto w = sys.BuildWorstCaseIpc();
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args), KernelExit::kDone);
  EXPECT_EQ(w.receiver->state, ThreadState::kRunning);
  EXPECT_EQ(w.caller->state, ThreadState::kBlockedOnReply);
  sys.kernel().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(BeforeAndAfter, KernelSmokeTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "After" : "Before";
                         });

}  // namespace
}  // namespace pmk
