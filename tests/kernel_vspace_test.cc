// Address-space tests (Section 3.6): the ASID design (Figure 4) with lazy
// deletion and harmless stale references, vs. the shadow-page-table design
// (Figure 5) with eager back-pointers and preemptible deletion.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

KernelConfig ShadowCfg() { return KernelConfig::After(); }

KernelConfig AsidCfg() {
  KernelConfig c = KernelConfig::After();
  c.vspace = VSpaceKind::kAsid;
  return c;
}

struct VspaceRig {
  explicit VspaceRig(const KernelConfig& kc) : sys(kc, EvalMachine(false)) {
    t = sys.AddThread(10);
    pd = sys.kernel().DirectPageDir();
    pt = sys.kernel().DirectPageTable();
    if (kc.vspace == VSpaceKind::kAsid) {
      sys.kernel().DirectAssignAsid(pd);
    }
    Cap pt_cap;
    pt_cap.type = ObjType::kPageTable;
    pt_cap.obj = pt->base;
    pt_cptr = sys.AddCap(pt_cap);
    Cap f_cap;
    frame = sys.kernel().DirectFrame(12);  // 4 KiB
    f_cap.type = ObjType::kFrame;
    f_cap.obj = frame->base;
    frame_cptr = sys.AddCap(f_cap);
    Cap pd_cap;
    pd_cap.type = ObjType::kPageDir;
    pd_cap.obj = pd->base;
    pd_cptr = sys.AddCap(pd_cap);
    sys.kernel().DirectSetCurrent(t);
  }

  void MapPt(Addr vaddr = 0x0040'0000) {
    SyscallArgs args;
    args.label = InvLabel::kPageTableMap;
    args.arg0 = pd->base;
    args.arg1 = vaddr;
    sys.kernel().Syscall(SysOp::kCall, pt_cptr, args);
  }
  KError MapFrame(Addr vaddr = 0x0040'1000) {
    SyscallArgs args;
    args.label = InvLabel::kFrameMap;
    args.arg0 = pd->base;
    args.arg1 = vaddr;
    sys.kernel().Syscall(SysOp::kCall, frame_cptr, args);
    return t->last_error;
  }
  KError UnmapFrame() {
    SyscallArgs args;
    args.label = InvLabel::kFrameUnmap;
    sys.kernel().Syscall(SysOp::kCall, frame_cptr, args);
    return t->last_error;
  }

  System sys;
  TcbObj* t = nullptr;
  PageDirObj* pd = nullptr;
  PageTableObj* pt = nullptr;
  FrameObj* frame = nullptr;
  std::uint32_t pt_cptr = 0;
  std::uint32_t frame_cptr = 0;
  std::uint32_t pd_cptr = 0;
};

class VspaceBothTest : public ::testing::TestWithParam<bool> {
 protected:
  KernelConfig Config() const { return GetParam() ? ShadowCfg() : AsidCfg(); }
};

TEST_P(VspaceBothTest, MapThenUnmapFrame) {
  VspaceRig rig(Config());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);
  EXPECT_TRUE(rig.frame->mapped);
  const std::uint32_t pt_index = (0x0040'1000 >> 12) & 0xFF;
  EXPECT_EQ(rig.pt->pte[pt_index], rig.frame->base);
  EXPECT_EQ(rig.pt->lowest_mapped, pt_index);

  ASSERT_EQ(rig.UnmapFrame(), KError::kOk);
  EXPECT_FALSE(rig.frame->mapped);
  EXPECT_EQ(rig.pt->pte[pt_index], 0u);
  rig.sys.kernel().CheckInvariants();
}

TEST_P(VspaceBothTest, MapWithoutPageTableFails) {
  VspaceRig rig(Config());
  EXPECT_EQ(rig.MapFrame(), KError::kInvalidArg);
  EXPECT_FALSE(rig.frame->mapped);
}

TEST_P(VspaceBothTest, DoubleMapFails) {
  VspaceRig rig(Config());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);
  EXPECT_EQ(rig.MapFrame(0x0040'2000), KError::kInvalidArg);  // already mapped
}

TEST_P(VspaceBothTest, SectionFrameMapsIntoPageDirectory) {
  VspaceRig rig(Config());
  FrameObj* big = rig.sys.kernel().DirectFrame(20);  // 1 MiB section
  Cap c;
  c.type = ObjType::kFrame;
  c.obj = big->base;
  const std::uint32_t cptr = rig.sys.AddCap(c);
  SyscallArgs args;
  args.label = InvLabel::kFrameMap;
  args.arg0 = rig.pd->base;
  args.arg1 = 0x0100'0000;
  rig.sys.kernel().Syscall(SysOp::kCall, cptr, args);
  ASSERT_EQ(rig.t->last_error, KError::kOk);
  const std::uint32_t pd_index = 0x0100'0000 >> 20;
  EXPECT_EQ(rig.pd->pde[pd_index], big->base);
  EXPECT_TRUE(rig.pd->is_section[pd_index]);
  rig.sys.kernel().CheckInvariants();
}

TEST_P(VspaceBothTest, MappingIntoKernelRegionRejected) {
  VspaceRig rig(Config());
  rig.MapPt();
  // Top 256 MiB is the kernel's.
  EXPECT_EQ(rig.MapFrame(0xF000'0000), KError::kInvalidArg);
}

INSTANTIATE_TEST_SUITE_P(Designs, VspaceBothTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Shadow" : "Asid";
                         });

// ---------- ASID-specific behaviour (Figure 4) ----------

TEST(AsidTest, PdDeleteIsLazyAndConstantTime) {
  VspaceRig rig(AsidCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);

  // Delete the (final) PD cap: O(1) — just the ASID entry + TLB flush.
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = rig.pd_cptr & 0xFF;
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = rig.sys.root()->base;
  const std::uint32_t root_cptr = rig.sys.AddCap(root_cap);
  rig.sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(rig.sys.kernel().objects().Get<PageDirObj>(rig.pd->base), nullptr);
  // The frame cap still believes it is mapped — the stale, harmless
  // dangling reference of the ASID design.
  EXPECT_TRUE(rig.frame->mapped);
}

TEST(AsidTest, StaleFrameUnmapIsHarmless) {
  VspaceRig rig(AsidCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);
  // Lazily delete the address space (clear the pool entry directly).
  AsidPoolObj* pool = nullptr;
  for (const auto& [base, obj] : rig.sys.kernel().objects().objects()) {
    if (auto* p = dynamic_cast<AsidPoolObj*>(obj.get())) {
      pool = p;
    }
  }
  ASSERT_NE(pool, nullptr);
  pool->pd[rig.pd->asid] = 0;  // address space deleted lazily

  // Unmapping through the stale ASID takes the cheap early-out.
  EXPECT_EQ(rig.UnmapFrame(), KError::kOk);
  EXPECT_FALSE(rig.frame->mapped);
  rig.sys.kernel().CheckInvariants();
}

TEST(AsidTest, AsidAllocFindsFreeSlotViaTcbConfigure) {
  System sys(AsidCfg(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  TcbObj* worker = sys.AddThread(10);
  PageDirObj* pd = sys.kernel().DirectPageDir();
  Cap tcb_cap;
  tcb_cap.type = ObjType::kTcb;
  tcb_cap.obj = worker->base;
  const std::uint32_t cptr = sys.AddCap(tcb_cap);
  sys.kernel().DirectSetCurrent(t);

  ASSERT_EQ(pd->asid, 0u);
  SyscallArgs args;
  args.label = InvLabel::kTcbConfigure;
  args.arg1 = pd->base;
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  EXPECT_NE(pd->asid, 0u);
  EXPECT_EQ(worker->vspace, pd->base);
}

TEST(AsidTest, PoolDeleteClearsEveryAddressSpace) {
  System sys(AsidCfg(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  std::vector<PageDirObj*> pds;
  for (int i = 0; i < 5; ++i) {
    PageDirObj* pd = sys.kernel().DirectPageDir();
    sys.kernel().DirectAssignAsid(pd);
    pds.push_back(pd);
  }
  AsidPoolObj* pool = nullptr;
  for (const auto& [base, obj] : sys.kernel().objects().objects()) {
    if (auto* p = dynamic_cast<AsidPoolObj*>(obj.get())) {
      pool = p;
    }
  }
  ASSERT_NE(pool, nullptr);
  Cap pool_cap;
  pool_cap.type = ObjType::kAsidPool;
  pool_cap.obj = pool->base;
  const std::uint32_t pool_cptr = sys.AddCap(pool_cap);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = pool_cptr & 0xFF;
  // Non-preemptible even in the "after" kernel (the design pain point):
  // run it with a pending interrupt and observe it completes regardless.
  sys.machine().irq().Assert(InterruptController::kTimerLine, sys.machine().Now());
  const KernelExit e = sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(e, KernelExit::kDone);
  for (PageDirObj* pd : pds) {
    EXPECT_EQ(pd->asid, 0u);
  }
  EXPECT_EQ(sys.kernel().objects().Get<AsidPoolObj>(pool->base), nullptr);
}

// ---------- Shadow-page-table behaviour (Figure 5) ----------

TEST(ShadowTest, BackPointersTrackFrameCaps) {
  VspaceRig rig(ShadowCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);
  const std::uint32_t pt_index = (0x0040'1000 >> 12) & 0xFF;
  EXPECT_EQ(rig.pt->shadow[pt_index], rig.sys.SlotOf(rig.frame_cptr));
}

TEST(ShadowTest, PdDeleteEagerlyClearsFrameCaps) {
  VspaceRig rig(ShadowCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);

  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = rig.sys.root()->base;
  const std::uint32_t root_cptr = rig.sys.AddCap(root_cap);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = rig.pd_cptr & 0xFF;
  rig.sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(rig.sys.kernel().objects().Get<PageDirObj>(rig.pd->base), nullptr);
  // Eager back-pointer update: no dangling reference survives.
  EXPECT_FALSE(rig.frame->mapped);
  EXPECT_EQ(rig.frame->mapped_pd, 0u);
  rig.sys.kernel().CheckInvariants();
}

TEST(ShadowTest, PdDeletePreemptsAndResumesFromLowestMapped) {
  KernelConfig kc = ShadowCfg();
  System sys(kc, EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  PageDirObj* pd = sys.kernel().DirectPageDir();

  // Populate many PTs, each holding many mappings.
  std::vector<FrameObj*> frames;
  for (int p = 0; p < 4; ++p) {
    PageTableObj* pt = sys.kernel().DirectPageTable();
    Cap pt_cap;
    pt_cap.type = ObjType::kPageTable;
    pt_cap.obj = pt->base;
    CapSlot* pt_slot = sys.kernel().DirectCap(sys.root(), 100 + p, pt_cap);
    sys.kernel().DirectMapPageTable(pd, 16 + p, pt, pt_slot);
    for (int fi = 0; fi < 24; ++fi) {
      FrameObj* f = sys.kernel().DirectFrame(12);
      Cap fc;
      fc.type = ObjType::kFrame;
      fc.obj = f->base;
      CapSlot* fs = sys.kernel().DirectCap(sys.root(), 110 + p * 24 + fi, fc);
      sys.kernel().DirectMapFrame(pd, (static_cast<Addr>(16 + p) << 20) | (fi << 12), f, fs);
      frames.push_back(f);
    }
  }
  Cap pd_cap;
  pd_cap.type = ObjType::kPageDir;
  pd_cap.obj = pd->base;
  const std::uint32_t pd_cptr = sys.AddCap(pd_cap);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = pd_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 4000);
  EXPECT_GT(res.preemptions, 2u);
  EXPECT_EQ(sys.kernel().objects().Get<PageDirObj>(pd->base), nullptr);
  for (FrameObj* f : frames) {
    EXPECT_FALSE(f->mapped);
  }
  sys.kernel().CheckInvariants();
  EXPECT_LT(res.max_irq_latency, 10'000u);  // bounded by the per-entry chunking
}

TEST(ShadowTest, PtDeleteUnlinksFromPageDirectory) {
  VspaceRig rig(ShadowCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(), KError::kOk);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = rig.sys.root()->base;
  const std::uint32_t root_cptr = rig.sys.AddCap(root_cap);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = rig.pt_cptr & 0xFF;
  rig.sys.kernel().Syscall(SysOp::kCall, root_cptr, args);
  EXPECT_EQ(rig.sys.kernel().objects().Get<PageTableObj>(rig.pt->base), nullptr);
  const std::uint32_t pd_index = 0x0040'0000 >> 20;
  EXPECT_EQ(rig.pd->pde[pd_index], 0u);
  EXPECT_FALSE(rig.frame->mapped);
  rig.sys.kernel().CheckInvariants();
}

TEST(ShadowTest, LowestMappedIndexMaintainedByMapUnmap) {
  VspaceRig rig(ShadowCfg());
  rig.MapPt();
  ASSERT_EQ(rig.MapFrame(0x0040'8000), KError::kOk);  // index 8
  EXPECT_EQ(rig.pt->lowest_mapped, 8u);
  FrameObj* f2 = rig.sys.kernel().DirectFrame(12);
  Cap c;
  c.type = ObjType::kFrame;
  c.obj = f2->base;
  CapSlot* s2 = rig.sys.kernel().DirectCap(rig.sys.root(), 180, c);
  rig.sys.kernel().DirectMapFrame(rig.pd, 0x0040'3000, f2, s2);  // index 3
  EXPECT_EQ(rig.pt->lowest_mapped, 3u);
}

TEST(ShadowTest, ObjectSizesDoubleForShadow) {
  // Section 3.6's memory-overhead discussion: PT/PD double with shadows.
  const KernelConfig shadow = ShadowCfg();
  const KernelConfig asid = AsidCfg();
  EXPECT_EQ(ObjSizeBits(ObjType::kPageTable, 0, shadow), 11);
  EXPECT_EQ(ObjSizeBits(ObjType::kPageTable, 0, asid), 10);
  EXPECT_EQ(ObjSizeBits(ObjType::kPageDir, 0, shadow), 15);
  EXPECT_EQ(ObjSizeBits(ObjType::kPageDir, 0, asid), 14);
}

}  // namespace
}  // namespace pmk
