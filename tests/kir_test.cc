// Unit tests for the kernel IR: program layout validation and — crucially —
// the executor's enforcement that dynamic execution matches the declared CFG
// (edges, calls/returns, dynamic-access budgets, register-machine guards).

#include <gtest/gtest.h>

#include "src/kir/executor.h"

namespace pmk {
namespace {

// A tiny two-function program:
//   main: entry -> loop(self, guard r0>=1) -> callb(calls leaf) -> exit(ret)
//   leaf: body(ret)
struct TestProgram {
  Program prog;
  FuncId main = kNoFunc;
  FuncId leaf = kNoFunc;
  BlockId entry = kNoBlock;
  BlockId loop = kNoBlock;
  BlockId callb = kNoBlock;
  BlockId exit = kNoBlock;
  BlockId leaf_body = kNoBlock;

  TestProgram() {
    main = prog.AddFunction("main");
    leaf = prog.AddFunction("leaf");
    {
      Block b;
      b.name = "main.entry";
      b.instr_count = 4;
      b.reg_ops.push_back({RegOp::Kind::kConst, 0, 0, 3});
      entry = prog.AddBlock(main, b);
    }
    {
      Block b;
      b.name = "main.loop";
      b.instr_count = 2;
      b.max_dynamic_accesses = 1;
      b.reg_ops.push_back({RegOp::Kind::kAdd, 0, 0, -1});
      b.cond.cmp = BranchCond::Cmp::kGe;
      b.cond.lhs = 0;
      b.cond.rhs_imm = 1;
      loop = prog.AddBlock(main, b);
    }
    {
      Block b;
      b.name = "main.call";
      b.instr_count = 2;
      b.callee = leaf;
      callb = prog.AddBlock(main, b);
    }
    {
      Block b;
      b.name = "main.exit";
      b.instr_count = 3;
      b.is_return = true;
      exit = prog.AddBlock(main, b);
    }
    {
      Block b;
      b.name = "leaf.body";
      b.instr_count = 5;
      b.is_return = true;
      leaf_body = prog.AddBlock(leaf, b);
    }
    prog.AddEdge(entry, loop);
    prog.AddEdge(loop, callb);  // fall: exit loop
    prog.AddEdge(loop, loop);   // taken: continue
    prog.AddEdge(callb, exit);
    prog.Layout();
  }
};

TEST(ProgramTest, LayoutAssignsMonotonicAddresses) {
  TestProgram t;
  EXPECT_EQ(t.prog.block(t.entry).address, Program::kTextBase);
  EXPECT_GT(t.prog.block(t.loop).address, t.prog.block(t.entry).address);
  EXPECT_GT(t.prog.text_bytes(), 0u);
}

TEST(ProgramTest, FrameAddressesReflectCallDepth) {
  TestProgram t;
  // leaf is called by main, so its frame sits below main's.
  EXPECT_LT(t.prog.function(t.leaf).frame_addr, t.prog.function(t.main).frame_addr);
}

TEST(ProgramTest, RejectsReturnBlockWithSuccessors) {
  Program p;
  const FuncId f = p.AddFunction("f");
  Block a;
  a.name = "a";
  a.is_return = true;
  const BlockId ba = p.AddBlock(f, a);
  Block b;
  b.name = "b";
  b.is_return = true;
  const BlockId bb = p.AddBlock(f, b);
  p.AddEdge(ba, bb);
  EXPECT_THROW(p.Layout(), std::logic_error);
}

TEST(ProgramTest, RejectsDanglingBlock) {
  Program p;
  const FuncId f = p.AddFunction("f");
  Block a;
  a.name = "a";
  p.AddBlock(f, a);  // no successors, not a return
  EXPECT_THROW(p.Layout(), std::logic_error);
}

TEST(ProgramTest, RejectsRecursion) {
  Program p;
  const FuncId f = p.AddFunction("f");
  Block a;
  a.name = "a";
  a.callee = f;  // self-call
  const BlockId ba = p.AddBlock(f, a);
  Block r;
  r.name = "r";
  r.is_return = true;
  const BlockId br = p.AddBlock(f, r);
  p.AddEdge(ba, br);
  EXPECT_THROW(p.Layout(), std::logic_error);
}

class ExecutorTest : public ::testing::Test {
 protected:
  TestProgram t;
  MachineConfig mc;
  Machine m{mc};
  Executor ex{&t.prog, &m};
};

TEST_F(ExecutorTest, StraightPathRuns) {
  ex.Begin(t.main);
  ex.At(t.entry);  // r0 = 3: the two-sided guard demands 3 iterations
  ex.At(t.loop);
  ex.Touch(0x5000);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.callb);
  ex.At(t.leaf_body);
  ex.At(t.exit);
  ex.End();
  EXPECT_GT(m.Now(), 0u);
}

TEST_F(ExecutorTest, LoopIterationsFollowGuard) {
  ex.Begin(t.main);
  ex.At(t.entry);  // r0 = 3
  for (int i = 0; i < 3; ++i) {
    ex.At(t.loop);
  }
  ex.At(t.callb);
  ex.At(t.leaf_body);
  ex.At(t.exit);
  ex.End();
}

TEST_F(ExecutorTest, GuardViolationDetected) {
  ex.Begin(t.main);
  ex.At(t.entry);  // r0 = 3
  ex.At(t.loop);   // r0=2
  ex.At(t.loop);   // r0=1
  ex.At(t.loop);   // r0=0: two-sided guard forbids continuing
  EXPECT_THROW(ex.At(t.loop), ExecError);
}

TEST_F(ExecutorTest, TwoSidedGuardForbidsEarlyExit) {
  ex.Begin(t.main);
  ex.At(t.entry);  // r0 = 3
  ex.At(t.loop);   // r0 = 2: must loop again
  EXPECT_THROW(ex.At(t.callb), ExecError);
}

TEST_F(ExecutorTest, UndeclaredEdgeRejected) {
  ex.Begin(t.main);
  ex.At(t.entry);
  EXPECT_THROW(ex.At(t.exit), ExecError);  // entry -> exit not in CFG
}

TEST_F(ExecutorTest, WrongEntryBlockRejected) {
  ex.Begin(t.main);
  EXPECT_THROW(ex.At(t.loop), ExecError);
}

TEST_F(ExecutorTest, DynamicAccessBudgetEnforced) {
  ex.Begin(t.main);
  ex.At(t.entry);
  ex.At(t.loop);
  ex.Touch(0x5000);
  ex.Touch(0x5040);  // budget is 1; checked when leaving the block
  EXPECT_THROW(ex.At(t.loop), ExecError);
}

TEST_F(ExecutorTest, TouchOutsideBlockRejected) {
  EXPECT_THROW(ex.Touch(0x1234), ExecError);
}

TEST_F(ExecutorTest, CallMustEnterCalleeEntry) {
  ex.Begin(t.main);
  ex.At(t.entry);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.callb);
  EXPECT_THROW(ex.At(t.exit), ExecError);  // must visit leaf first
}

TEST_F(ExecutorTest, ReturnMustResumeAtCallSiteSuccessor) {
  ex.Begin(t.main);
  ex.At(t.entry);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.callb);
  ex.At(t.leaf_body);
  EXPECT_THROW(ex.At(t.loop), ExecError);  // resume block is exit
}

TEST_F(ExecutorTest, EndRequiresReturnBlock) {
  ex.Begin(t.main);
  ex.At(t.entry);
  EXPECT_THROW(ex.End(), ExecError);
}

TEST_F(ExecutorTest, EndRequiresEmptyCallStack) {
  ex.Begin(t.main);
  ex.At(t.entry);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.callb);
  ex.At(t.leaf_body);  // inside leaf: return block, but stack non-empty
  EXPECT_THROW(ex.End(), ExecError);
}

TEST_F(ExecutorTest, RegistersSavedAcrossCalls) {
  // r0 is decremented in main's loop; the callee must not clobber it from
  // main's point of view (callee-saved semantics).
  ex.Begin(t.main);
  ex.At(t.entry);  // r0 = 3
  ex.At(t.loop);   // r0 = 2
  ex.At(t.loop);   // r0 = 1
  ex.At(t.loop);   // r0 = 0, exit
  ex.At(t.callb);
  ex.At(t.leaf_body);
  ex.At(t.exit);
  ex.End();  // would have thrown had the guard value been corrupted
}

TEST_F(ExecutorTest, TraceRecordsBlockSequence) {
  ex.StartRecording();
  ex.Begin(t.main);
  ex.At(t.entry);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.loop);
  ex.At(t.callb);
  ex.At(t.leaf_body);
  ex.At(t.exit);
  ex.End();
  const Trace tr = ex.StopRecording();
  ASSERT_EQ(tr.blocks.size(), 7u);
  EXPECT_EQ(tr.blocks.front(), t.entry);
  EXPECT_EQ(tr.blocks.back(), t.exit);
  EXPECT_GT(tr.Duration(), 0u);
}

TEST_F(ExecutorTest, SetRegValidatesLoopInputRange) {
  // Declare a loop input on the loop head, then inject an out-of-range value.
  TestProgram t2;
  t2.prog.mutable_block(t2.loop).loop_inputs.push_back({0, 0, 10});
  Machine m2{MachineConfig{}};
  Executor ex2(&t2.prog, &m2);
  ex2.Begin(t2.main);
  ex2.At(t2.entry);
  EXPECT_THROW(ex2.SetReg(0, 11), ExecError);
  ex2.SetReg(0, 10);  // in range
}

}  // namespace
}  // namespace pmk
