// Tests for the modelled NIC descriptor ring (src/load/ring.h) and the frame
// source that feeds it: FIFO ordering across wraparound, overrun drop
// accounting under the drop-newest policy, deferred-drain ordering through
// the two-phase driver, and fork-safety — a ring copied mid-burst (the
// checkpoint idiom) must replay identically in both copies.

#include <gtest/gtest.h>

#include <vector>

#include "src/load/ring.h"
#include "src/load/source.h"
#include "src/sim/rng.h"

namespace pmk::load {
namespace {

FrameDesc Frame(std::uint64_t seq, Cycles at = 0, std::uint32_t len = 64) {
  FrameDesc d;
  d.seq = seq;
  d.enqueued = at;
  d.len = len;
  return d;
}

TEST(DeviceRingTest, StartsEmpty) {
  DeviceRing ring(8);
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.Full());
  EXPECT_EQ(ring.Size(), 0u);
  EXPECT_EQ(ring.Pop(), std::nullopt);
  EXPECT_EQ(ring.produced(), 0u);
  EXPECT_EQ(ring.consumed(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(DeviceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(DeviceRing(5).capacity(), 8u);
  EXPECT_EQ(DeviceRing(8).capacity(), 8u);
  EXPECT_EQ(DeviceRing(1).capacity(), 2u);
  EXPECT_THROW(DeviceRing(0), std::invalid_argument);
}

TEST(DeviceRingTest, FillsToCapacityThenDropsNewest) {
  DeviceRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.Push(Frame(i)));
  }
  EXPECT_TRUE(ring.Full());
  // Overrun: the incoming (newest) frame is the one lost; queued descriptors
  // are never overwritten.
  EXPECT_FALSE(ring.Push(Frame(99)));
  EXPECT_FALSE(ring.Push(Frame(100)));
  EXPECT_EQ(ring.produced(), 6u);  // device-side attempts, drops included
  EXPECT_EQ(ring.dropped(), 2u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto d = ring.Pop();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->seq, i);  // 99/100 are nowhere in the queue
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(DeviceRingTest, FifoOrderSurvivesWraparound) {
  DeviceRing ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Pre-fill to an odd occupancy, then push/pop in lockstep: head and tail
  // lap the backing store dozens of times at a misaligned offset.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.Push(Frame(next_push++)));
  }
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.Push(Frame(next_push++)));
    auto d = ring.Pop();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->seq, next_pop++);
    ASSERT_LE(ring.Size(), ring.capacity());
  }
  while (auto d = ring.Pop()) {
    EXPECT_EQ(d->seq, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(ring.consumed(), ring.produced() - ring.dropped());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(DeviceRingTest, CountersBalanceUnderOverrun) {
  DeviceRing ring(2);
  std::uint64_t popped = 0;
  SplitMix64 rng(7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ring.Push(Frame(i));
    if (rng.Below(3) == 0 && ring.Pop()) {
      popped++;
    }
  }
  while (ring.Pop()) {
    popped++;
  }
  EXPECT_EQ(ring.consumed(), popped);
  EXPECT_EQ(ring.produced(), 1000u);
  EXPECT_EQ(ring.produced(), ring.consumed() + ring.dropped());
}

TEST(DeviceRingTest, ForkMidBurstReplaysIdentically) {
  // The traffic harness checkpoints a booted world and forks it per
  // scenario; the ring is a plain value type so a copy taken mid-burst must
  // behave bit-identically to the original under the same subsequent ops.
  DeviceRing ring(8);
  for (std::uint64_t i = 0; i < 11; ++i) {
    ring.Push(Frame(i, /*at=*/i * 10));  // 8 queued, 3 dropped
  }
  ring.Pop();
  ring.Pop();

  DeviceRing forked = ring;  // "checkpoint" mid-burst
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  const auto drive = [](DeviceRing& r, std::vector<std::uint64_t>& out) {
    r.Push(Frame(50));
    r.Push(Frame(51));
    while (auto d = r.Pop()) {
      out.push_back(d->seq);
    }
  };
  drive(ring, a);
  drive(forked, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ring.produced(), forked.produced());
  EXPECT_EQ(ring.dropped(), forked.dropped());
  EXPECT_EQ(ring.consumed(), forked.consumed());
}

TEST(FrameSourceTest, DeterministicForAGivenStream) {
  const auto run = [] {
    DeviceRing ring(64);
    InterruptController ic;
    FrameSource::Config cfg;
    cfg.mean_gap = 100;
    FrameSource src(cfg, SplitMix64(42).Split(3));
    for (Cycles now = 0; now < 10000; now += 50) {
      src.Tick(now, ring, ic);
    }
    std::vector<std::uint64_t> seqs;
    while (auto d = ring.Pop()) {
      seqs.push_back(d->seq);
    }
    return std::make_pair(src.offered(), seqs);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 0u);
}

TEST(FrameSourceTest, AssertsLineEvenWhenRingOverruns) {
  // A real NIC raises the interrupt regardless of descriptor availability;
  // the dropped frame is accounted at the ring, not silently elided.
  DeviceRing ring(2);
  InterruptController ic;
  FrameSource::Config cfg;
  cfg.line = 3;
  cfg.mean_gap = 10;
  FrameSource src(cfg, SplitMix64(1));
  src.Tick(100000, ring, ic);  // one big catch-up burst
  EXPECT_GT(src.offered(), ring.capacity());
  EXPECT_GT(ring.dropped(), 0u);
  EXPECT_TRUE(ic.IsPending(3));
  // Every frame past the first assert coalesced while the line stayed raised.
  EXPECT_EQ(ic.coalesced_asserts(), src.offered() - 1);
}

}  // namespace
}  // namespace pmk::load
