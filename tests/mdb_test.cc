// Unit tests for the mapping database (capability derivation tree) and the
// object table's alignment/overlap invariants.

#include <gtest/gtest.h>

#include "src/kernel/cap.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

CapSlot MakeSlot(Addr obj, std::uint64_t badge = 0) {
  CapSlot s;
  s.cap.type = ObjType::kEndpoint;
  s.cap.obj = obj;
  s.cap.badge = badge;
  return s;
}

TEST(MdbTest, InsertChildLinksAndDeepens) {
  CapSlot parent = MakeSlot(0x1000);
  CapSlot child = MakeSlot(0x1000, 5);
  Mdb::InsertChild(&parent, &child);
  EXPECT_EQ(parent.mdb_next, &child);
  EXPECT_EQ(child.mdb_prev, &parent);
  EXPECT_EQ(child.mdb_depth, parent.mdb_depth + 1);
  EXPECT_TRUE(Mdb::HasChildren(&parent));
  EXPECT_EQ(Mdb::FirstDescendant(&parent), &child);
}

TEST(MdbTest, SameObjectCapsStayContiguous) {
  CapSlot a = MakeSlot(0x1000);
  CapSlot b = MakeSlot(0x1000);
  CapSlot c = MakeSlot(0x1000);
  Mdb::InsertChild(&a, &b);
  Mdb::InsertChild(&a, &c);  // inserted between a and b
  EXPECT_EQ(a.mdb_next, &c);
  EXPECT_EQ(c.mdb_next, &b);
  EXPECT_FALSE(Mdb::IsFinal(&a));
  EXPECT_FALSE(Mdb::IsFinal(&b));
  EXPECT_FALSE(Mdb::IsFinal(&c));
}

TEST(MdbTest, FinalityDetectsLastCap) {
  CapSlot a = MakeSlot(0x1000);
  CapSlot b = MakeSlot(0x1000);
  Mdb::InsertChild(&a, &b);
  Mdb::Remove(&b);
  EXPECT_TRUE(Mdb::IsFinal(&a));
  EXPECT_TRUE(b.IsNull());
  EXPECT_EQ(b.mdb_prev, nullptr);
  EXPECT_EQ(b.mdb_next, nullptr);
}

TEST(MdbTest, DistinctObjectsAreEachFinal) {
  CapSlot a = MakeSlot(0x1000);
  CapSlot b = MakeSlot(0x2000);
  Mdb::InsertSibling(&a, &b);
  EXPECT_TRUE(Mdb::IsFinal(&a));
  EXPECT_TRUE(Mdb::IsFinal(&b));
}

TEST(MdbTest, RemoveMiddleRelinksNeighbours) {
  CapSlot a = MakeSlot(0x1000);
  CapSlot b = MakeSlot(0x1000);
  CapSlot c = MakeSlot(0x1000, 9);
  Mdb::InsertChild(&a, &b);
  Mdb::InsertChild(&b, &c);
  Mdb::Remove(&b);  // c reparents to a implicitly
  EXPECT_EQ(a.mdb_next, &c);
  EXPECT_EQ(c.mdb_prev, &a);
  EXPECT_TRUE(Mdb::WellFormedAt(&a));
  EXPECT_TRUE(Mdb::WellFormedAt(&c));
}

TEST(MdbTest, DescendantEnumerationStopsAtDepth) {
  CapSlot root = MakeSlot(0x1000);
  CapSlot child1 = MakeSlot(0x1000, 1);
  CapSlot grand = MakeSlot(0x1000, 2);
  CapSlot sibling = MakeSlot(0x3000);
  Mdb::InsertSibling(&root, &sibling);  // not a descendant
  Mdb::InsertChild(&root, &child1);
  Mdb::InsertChild(&child1, &grand);
  std::size_t count = 0;
  for (CapSlot* d = Mdb::FirstDescendant(&root); d != nullptr;
       d = Mdb::NextDescendant(&root, d)) {
    count++;
  }
  EXPECT_EQ(count, 2u);  // child1 + grand, not sibling
}

TEST(MdbTest, WellFormedDetectsBrokenBackPointer) {
  CapSlot a = MakeSlot(0x1000);
  CapSlot b = MakeSlot(0x1000);
  Mdb::InsertChild(&a, &b);
  b.mdb_prev = nullptr;  // corrupt
  EXPECT_FALSE(Mdb::WellFormedAt(&a));
}

TEST(ObjectTableTest, RejectsMisalignedObject) {
  ObjectTable t;
  auto o = std::make_unique<EndpointObj>();
  o->type = ObjType::kEndpoint;
  o->size_bits = 4;
  o->base = 0x1008;  // not 16-aligned
  EXPECT_THROW(t.Insert(std::move(o)), std::logic_error);
}

TEST(ObjectTableTest, RejectsOverlap) {
  ObjectTable t;
  auto a = std::make_unique<TcbObj>();
  a->type = ObjType::kTcb;
  a->size_bits = 9;
  a->base = 0x1000;
  t.Insert(std::move(a));
  auto b = std::make_unique<EndpointObj>();
  b->type = ObjType::kEndpoint;
  b->size_bits = 4;
  b->base = 0x1100;  // inside the TCB
  EXPECT_THROW(t.Insert(std::move(b)), std::logic_error);
}

TEST(ObjectTableTest, UntypedMayContainItsChildren) {
  ObjectTable t;
  auto ut = std::make_unique<UntypedObj>();
  ut->type = ObjType::kUntyped;
  ut->size_bits = 12;
  ut->base = 0x2000;
  ut->watermark = 0x2000;
  t.Insert(std::move(ut));
  auto child = std::make_unique<EndpointObj>();
  child->type = ObjType::kEndpoint;
  child->size_bits = 4;
  child->base = 0x2000;  // same base as the untyped: legal
  EXPECT_NO_THROW(t.Insert(std::move(child)));
  EXPECT_NE(t.Get<UntypedObj>(0x2000), nullptr);
  EXPECT_NE(t.Get<EndpointObj>(0x2000), nullptr);
}

TEST(ObjectTableTest, RemoveDistinguishesUntypedFromChild) {
  ObjectTable t;
  auto ut = std::make_unique<UntypedObj>();
  ut->type = ObjType::kUntyped;
  ut->size_bits = 12;
  ut->base = 0x2000;
  t.Insert(std::move(ut));
  auto child = std::make_unique<EndpointObj>();
  child->type = ObjType::kEndpoint;
  child->size_bits = 4;
  child->base = 0x2000;
  t.Insert(std::move(child));
  t.Remove(0x2000);  // removes the non-untyped object first
  EXPECT_EQ(t.Get<EndpointObj>(0x2000), nullptr);
  EXPECT_NE(t.Get<UntypedObj>(0x2000), nullptr);
}

TEST(UntypedRevokeTest, RevokeResetsWatermark) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  UntypedObj* ut = nullptr;
  const std::uint32_t ut_cptr = sys.AddUntyped(14, &ut);
  sys.kernel().DirectSetCurrent(t);

  SyscallArgs mk;
  mk.label = InvLabel::kUntypedRetype;
  mk.obj_type = ObjType::kEndpoint;
  mk.dest_index = 70;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, mk);
  ASSERT_EQ(t->last_error, KError::kOk);
  ASSERT_GT(ut->watermark, ut->base);

  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  SyscallArgs revoke;
  revoke.label = InvLabel::kCNodeRevoke;
  revoke.arg0 = ut_cptr & 0xFF;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, revoke);
  EXPECT_EQ(ut->watermark, ut->base);  // memory reclaimed
  EXPECT_TRUE(sys.root()->slots[70].IsNull());

  // The region is reusable.
  mk.dest_index = 71;
  sys.kernel().Syscall(SysOp::kCall, ut_cptr, mk);
  EXPECT_EQ(t->last_error, KError::kOk);
  EXPECT_FALSE(sys.root()->slots[71].IsNull());
  sys.kernel().CheckInvariants();
}

}  // namespace
}  // namespace pmk
