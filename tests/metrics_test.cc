// Tests for the unified telemetry layer (src/obs/metrics, tail_observatory):
// lossless merging of concurrent shard recordings, snapshot determinism, the
// observer-never-input contract (campaign CSV byte-identical with telemetry
// on vs off), exporter shape, and the interrupt-response tail observatory.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/engine/job_pool.h"
#include "src/fault/campaign.h"
#include "src/obs/metrics.h"
#include "src/obs/tail_observatory.h"
#include "src/sim/latency.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// Every test that touches the process-wide registry starts from zero and
// leaves telemetry enabled (the process default).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Get().Reset();
  }
  void TearDown() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Get().Reset();
  }
};

TEST_F(MetricsTest, CounterGaugeHistogramRoundTrip) {
  const obs::Counter c("test.roundtrip.count");
  const obs::Gauge g("test.roundtrip.level");
  const obs::ValueHistogram h("test.roundtrip.values");
  c.Inc();
  c.Inc(41);
  g.Set(7);
  g.Add(-3);
  h.Record(100);
  h.Record(200);

  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.CounterValue("test.roundtrip.count"), 42u);
  const obs::MetricRow* gauge = snap.Find("test.roundtrip.level");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, 4);
  const obs::MetricRow* hist = snap.Find("test.roundtrip.values");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count(), 2u);
  EXPECT_EQ(hist->hist.min(), 100u);
  EXPECT_EQ(hist->hist.max(), 200u);
}

TEST_F(MetricsTest, DisabledRecordingIsInvisible) {
  const obs::Counter c("test.disabled.count");
  const obs::ValueHistogram h("test.disabled.values");
  MetricsRegistry::SetEnabled(false);
  c.Inc(100);
  h.Record(5);
  MetricsRegistry::SetEnabled(true);
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.CounterValue("test.disabled.count"), 0u);
  const obs::MetricRow* hist = snap.Find("test.disabled.values");
  ASSERT_NE(hist, nullptr);
  EXPECT_TRUE(hist->hist.empty());
}

TEST_F(MetricsTest, ConcurrentRunJobsRecordingMergesLosslessly) {
  // Many worker threads hammer the same counter and histogram through the
  // engine's job pool; the snapshot must account for every single recording
  // (per-thread shards merge commutatively, nothing is dropped or doubled).
  const obs::Counter c("test.concurrent.count");
  const obs::ValueHistogram h("test.concurrent.values");
  constexpr std::size_t kJobs = 64;
  constexpr unsigned kWorkers = 8;
  constexpr std::uint64_t kPerJob = 1000;
  engine::RunJobs(kJobs, kWorkers, [&](std::size_t job) {
    for (std::uint64_t i = 0; i < kPerJob; ++i) {
      c.Inc();
      h.Record(job + 1);  // distinct per-job value, min 1, max kJobs
    }
  });
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.CounterValue("test.concurrent.count"), kJobs * kPerJob);
  const obs::MetricRow* hist = snap.Find("test.concurrent.values");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count(), kJobs * kPerJob);
  EXPECT_EQ(hist->hist.min(), 1u);
  EXPECT_EQ(hist->hist.max(), kJobs);
}

TEST_F(MetricsTest, SnapshotIsDeterministicAcrossInterleavings) {
  // The same logical recordings through different thread interleavings must
  // produce identical snapshots, byte for byte in CSV form. The engine's own
  // wall-clock timer rows (engine.jobs.batch_nanos) are host time and thus
  // legitimately vary run to run, so the comparison keeps only the rows this
  // test records — the modelled data whose determinism the layer guarantees.
  const auto run = [](unsigned workers) {
    MetricsRegistry::Get().Reset();
    const obs::Counter c("test.determinism.count");
    const obs::ValueHistogram h("test.determinism.values");
    engine::RunJobs(32, workers, [&](std::size_t job) {
      c.Inc(job);
      h.Record(100 + job);
    });
    std::ostringstream os;
    MetricsRegistry::Get().Snapshot().WriteCsv(os);
    std::istringstream is(os.str());
    std::string line, kept;
    while (std::getline(is, line)) {
      if (line.rfind("test.determinism.", 0) == 0) {
        kept += line;
        kept += '\n';
      }
    }
    return kept;
  };
  const std::string serial = run(1);
  const std::string parallel4 = run(4);
  const std::string parallel8 = run(8);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel8);
  EXPECT_NE(serial.find("test.determinism.count"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotRowsAreSortedByName) {
  obs::Counter("test.sort.zzz").Inc();
  obs::Counter("test.sort.aaa").Inc();
  obs::Counter("test.sort.mmm").Inc();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  std::vector<std::string> names;
  for (const obs::MetricRow& row : snap.rows) {
    names.push_back(row.name);
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations) {
  const obs::Counter c("test.reset.count");
  c.Inc(5);
  MetricsRegistry::Get().Reset();
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().CounterValue("test.reset.count"), 0u);
  c.Inc(2);
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().CounterValue("test.reset.count"), 2u);
}

TEST_F(MetricsTest, ObsLabeledFoldsIntoName) {
  EXPECT_EQ(obs::ObsLabeled("fault.runs", "mode", "storm"), "fault.runs{mode=storm}");
}

TEST_F(MetricsTest, JsonlExportIsOneObjectPerLine) {
  obs::Counter("test.jsonl.count").Inc(3);
  obs::ValueHistogram("test.jsonl.values").Record(50);
  std::ostringstream os;
  MetricsRegistry::Get().Snapshot().WriteJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    // Minimal JSON shape check: one {...} object with a "metric" key.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"metric\""), std::string::npos) << line;
  }
  EXPECT_GE(lines, 2u);
}

// ------------------------------------------------- observer-never-input

TEST_F(MetricsTest, CampaignCsvIsByteIdenticalWithTelemetryOnAndOff) {
  // The acceptance contract: attaching the full telemetry layer (metrics
  // registry + tail observatory) cannot change one byte of the seeded
  // campaign's deterministic CSV.
  const auto run_csv = [](bool telemetry, obs::TailObservatory* observatory) {
    MetricsRegistry::SetEnabled(telemetry);
    CampaignConfig cfg;
    cfg.seed = 42;
    cfg.random_runs = 4;
    cfg.storm_runs = 1;
    cfg.hostile_runs = 16;
    cfg.spurious_runs = 4;
    cfg.observatory = observatory;
    std::ostringstream os;
    RunCampaign(cfg).WriteCsv(os);
    MetricsRegistry::SetEnabled(true);
    return os.str();
  };
  obs::TailObservatory observatory;
  const std::string with_everything = run_csv(true, &observatory);
  const std::string bare = run_csv(false, nullptr);
  EXPECT_EQ(with_everything, bare);
  EXPECT_FALSE(observatory.Rows().empty());
}

// ------------------------------------------------------ tail observatory

TEST(TailObservatoryTest, BoundsHeadroomAndExceedance) {
  obs::TailObservatory to;
  to.SetBound("after", 1000);
  to.Record("after", "sweep/retype", 100);
  to.Record("after", "sweep/retype", 500);
  ASSERT_EQ(to.Rows().size(), 1u);
  const auto row = to.Rows()[0];
  EXPECT_EQ(row.bound, 1000u);
  EXPECT_FALSE(row.exceeded());
  EXPECT_DOUBLE_EQ(row.headroom(), 2.0);
  EXPECT_FALSE(to.AnyExceedance());

  to.Record("after", "sweep/retype", 1001);
  EXPECT_TRUE(to.AnyExceedance());
}

TEST(TailObservatoryTest, UnenforcedScenarioNeverFailsTheRun) {
  obs::TailObservatory to;
  to.SetBound("after", 1000);
  to.SetUnenforced("storm");
  to.Record("after", "storm", 5000);  // over the bound, but informational
  EXPECT_FALSE(to.AnyExceedance());
  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].exceeded());
  EXPECT_FALSE(rows[0].enforced);
  // The rendering marks it, loudly but non-fatally.
  EXPECT_NE(to.RenderTable().find("info-exceeded"), std::string::npos);
}

TEST(TailObservatoryTest, TouchCreatesExplicitEmptyRow) {
  obs::TailObservatory to;
  to.SetBound("after", 1000);
  to.Touch("after", "hostile");
  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].hist.empty());
  EXPECT_FALSE(rows[0].exceeded());
  EXPECT_NE(to.RenderTable().find("no-irqs"), std::string::npos);
}

TEST(TailObservatoryTest, RowsSortedAndBoundAppliesRetroactively) {
  obs::TailObservatory to;
  to.Record("after", "zeta", 10);
  to.Record("after", "alpha", 20);
  to.Record("before", "alpha", 30);
  to.SetBound("after", 100);  // set AFTER recording; must apply to both rows
  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].config, "after");
  EXPECT_EQ(rows[0].scenario, "alpha");
  EXPECT_EQ(rows[1].scenario, "zeta");
  EXPECT_EQ(rows[2].config, "before");
  EXPECT_EQ(rows[0].bound, 100u);
  EXPECT_EQ(rows[1].bound, 100u);
  EXPECT_EQ(rows[2].bound, 0u);  // no bound registered for "before"
}

TEST(TailObservatoryTest, CsvAndJsonlExportOneRowPerCell) {
  obs::TailObservatory to;
  to.SetBound("after", 1000);
  to.Record("after", "sweep/retype", 100);
  to.Touch("after", "hostile");
  std::ostringstream csv_stream;
  to.WriteCsv(csv_stream);
  const std::string csv = csv_stream.str();
  // Header + two rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("sweep/retype"), std::string::npos);
  std::ostringstream jsonl_stream;
  to.WriteJsonl(jsonl_stream);
  const std::string jsonl = jsonl_stream.str();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(TailObservatoryTest, IrqCountersAccumulatePerCellAndExport) {
  obs::TailObservatory to;
  to.SetBound("after", 1000);
  to.Record("after", "traffic/open", 100);
  to.RecordIrqCounters("after", "traffic/open", /*spurious_acks=*/3,
                       /*coalesced_asserts=*/7);
  to.RecordIrqCounters("after", "traffic/open", 1, 2);  // accumulates
  to.Touch("after", "traffic/storm");                   // counters default to 0

  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].scenario, "traffic/open");
  EXPECT_EQ(rows[0].spurious_acks, 4u);
  EXPECT_EQ(rows[0].coalesced_asserts, 9u);
  EXPECT_EQ(rows[1].spurious_acks, 0u);
  EXPECT_EQ(rows[1].coalesced_asserts, 0u);

  std::ostringstream csv_stream;
  to.WriteCsv(csv_stream);
  const std::string csv = csv_stream.str();
  EXPECT_NE(csv.find("spurious_acks,coalesced_asserts"), std::string::npos);
  EXPECT_NE(csv.find(",4,9\n"), std::string::npos);

  std::ostringstream jsonl_stream;
  to.WriteJsonl(jsonl_stream);
  const std::string jsonl = jsonl_stream.str();
  EXPECT_NE(jsonl.find("\"spurious_acks\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"coalesced_asserts\":9"), std::string::npos);
}

TEST(TailObservatoryTest, IrqCountersAloneCreateARow) {
  // A scenario that only ever reported counters (no latency samples) still
  // shows up — drops at full saturation can coalesce every assert.
  obs::TailObservatory to;
  to.RecordIrqCounters("after", "traffic/saturated", 0, 12);
  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].hist.empty());
  EXPECT_EQ(rows[0].coalesced_asserts, 12u);
}

TEST(TailObservatoryTest, TailSinkHarvestsIrqDeliveriesFromLiveTrace) {
  // A TailSink on a timer-preempted retype must collect exactly the runs'
  // IRQ latencies — same count and max as the result record — at zero
  // modelled-cycle cost (cycle identity with no sink attached).
  const auto run = [](obs::TailObservatory* to) {
    System sys(KernelConfig::After(), EvalMachine(false));
    obs::TailSink sink(to, "after", "timer/retype");
    if (to != nullptr) {
      sys.AttachTraceSink(&sink);
    }
    TcbObj* t = sys.AddThread(10);
    const std::uint32_t ut_cptr = sys.AddUntyped(19);
    sys.kernel().DirectSetCurrent(t);
    SyscallArgs args;
    args.label = InvLabel::kUntypedRetype;
    args.obj_type = ObjType::kFrame;
    args.obj_bits = 18;
    args.dest_index = 70;
    const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 9000);
    sink.Flush();
    return res;
  };
  obs::TailObservatory to;
  const LongOpResult with_sink = run(&to);
  const LongOpResult without = run(nullptr);
  EXPECT_EQ(with_sink.max_irq_latency, without.max_irq_latency)
      << "attaching a TailSink changed modelled execution";
  const auto rows = to.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hist.count(), with_sink.irq_hist.count());
  EXPECT_EQ(rows[0].hist.max(), with_sink.irq_hist.max());
  EXPECT_FALSE(rows[0].hist.empty());
}

}  // namespace
}  // namespace pmk
