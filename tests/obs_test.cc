// Tests for the observability subsystem (src/obs): histogram bucket and
// percentile math, trace-event ordering and pairing, PMU snapshot/delta
// correctness against the raw cache statistics, the zero-overhead contract,
// and the per-block profiler against the static per-block bounds.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/obs/block_profile.h"
#include "src/obs/histogram.h"
#include "src/obs/pmu.h"
#include "src/obs/trace_sink.h"
#include "src/sim/latency.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, SmallValuesAreExact) {
  // Below 2^kSubBucketBits every value has its own bucket.
  for (Cycles v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, BucketRoundTripAndRelativeError) {
  // Any value maps to a bucket whose upper bound is >= the value and within
  // 1/16 (6.25%) of it — the HDR layout's resolution guarantee.
  for (const Cycles v :
       {16ull, 17ull, 31ull, 32ull, 100ull, 1000ull, 4095ull, 4096ull, 65537ull,
        1'000'000ull, 123'456'789ull, (1ull << 40) + 12345ull}) {
    const std::size_t idx = LatencyHistogram::BucketIndex(v);
    const Cycles ub = LatencyHistogram::BucketUpperBound(idx);
    EXPECT_GE(ub, v) << "value " << v;
    EXPECT_LE(ub - v, v / 16) << "value " << v;
    // The upper bound itself must land back in the same bucket.
    EXPECT_EQ(LatencyHistogram::BucketIndex(ub), idx) << "value " << v;
  }
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  std::size_t last = 0;
  for (Cycles v = 0; v < 100'000; v = v < 64 ? v + 1 : v + v / 7) {
    const std::size_t idx = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(idx, last) << "value " << v;
    last = idx;
  }
}

TEST(HistogramTest, PercentilesOfUniformRange) {
  LatencyHistogram h;
  for (Cycles v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Percentile returns a bucket upper bound: >= the true rank value, within
  // the 6.25% bucket resolution above it.
  for (const double p : {50.0, 90.0, 99.0}) {
    const auto truth = static_cast<Cycles>(p * 10);  // p% of 1..1000
    const Cycles got = h.Percentile(p);
    EXPECT_GE(got, truth) << "p" << p;
    EXPECT_LE(got, truth + truth / 16 + 1) << "p" << p;
  }
  EXPECT_EQ(h.Percentile(100), h.max());
  EXPECT_EQ(h.Percentile(0), h.min());
}

TEST(HistogramTest, SingleValueHasDegenerateDistribution) {
  LatencyHistogram h;
  h.Record(777, 5);
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 777u);
  EXPECT_EQ(s.p50, 777u);
  EXPECT_EQ(s.p99, 777u);
  EXPECT_EQ(s.max, 777u);
  EXPECT_DOUBLE_EQ(s.mean, 777.0);
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, CountAndSumAccessors) {
  LatencyHistogram h;
  // Empty histogram: both accessors are exact zeros (Sum() must not leak an
  // uninitialised accumulator).
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  h.Record(100);
  h.Record(250);
  h.Record(7);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 357.0);
  // Count()/Sum() agree with the existing count()/Mean() surface.
  EXPECT_EQ(h.Count(), h.count());
  EXPECT_DOUBLE_EQ(h.Sum() / static_cast<double>(h.Count()), h.Mean());
  h.Record(0, 5);  // multi-record of zeros bumps count, not sum
  EXPECT_EQ(h.Count(), 8u);
  EXPECT_EQ(h.Sum(), 357.0);
}

TEST(HistogramTest, CountAndSumSurviveMergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  b.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Sum(), 60.0);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.Sum(), 0.0);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  for (Cycles v = 1; v < 500; v += 3) {
    a.Record(v);
    both.Record(v);
  }
  for (Cycles v = 100; v < 90'000; v += 971) {
    b.Record(v);
    both.Record(v);
  }
  a.Merge(b);
  const auto sa = a.Summarize();
  const auto sb = both.Summarize();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p90, sb.p90);
  EXPECT_EQ(sa.p99, sb.p99);
  EXPECT_EQ(sa.max, sb.max);
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(123);
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, EmptyPercentileIsZeroAtEveryRank) {
  // Every percentile of an empty histogram is defined to be 0 — never a
  // sentinel min_ (~0) leak and never a crash.
  LatencyHistogram h;
  for (const double p : {0.0, 0.001, 50.0, 99.99, 100.0, -5.0, 200.0}) {
    EXPECT_EQ(h.Percentile(p), 0u) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  const auto s = h.Summarize();
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.p99, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(HistogramTest, MergeDisjointOctaves) {
  // The two histograms occupy disjoint octaves (a: values < 2^4, dense
  // low buckets; b: values around 2^40, sparse high buckets), so the merge
  // must grow the bucket array and keep both tails intact.
  LatencyHistogram a;
  LatencyHistogram b;
  for (Cycles v = 1; v <= 10; ++v) {
    a.Record(v);
  }
  const Cycles huge = (Cycles{1} << 40) + 12345;
  b.Record(huge, 2);

  LatencyHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 12u);
  EXPECT_EQ(merged.min(), 1u);
  EXPECT_EQ(merged.max(), huge);
  // p50 stays in the low octave, p99 lands in the high one.
  EXPECT_LE(merged.Percentile(50), 10u);
  EXPECT_GE(merged.Percentile(99), huge - huge / 16);

  // The mirror merge (high absorbs low) gives the same distribution.
  LatencyHistogram mirror = b;
  mirror.Merge(a);
  EXPECT_EQ(mirror.count(), merged.count());
  EXPECT_EQ(mirror.Percentile(50), merged.Percentile(50));
  EXPECT_EQ(mirror.Percentile(99), merged.Percentile(99));
  EXPECT_EQ(mirror.max(), merged.max());

  // Merging an empty histogram is a strict no-op in both directions.
  LatencyHistogram empty;
  const auto before = merged.Summarize();
  merged.Merge(empty);
  const auto after = merged.Summarize();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.min, before.min);
  EXPECT_EQ(after.max, before.max);
  empty.Merge(LatencyHistogram{});
  EXPECT_TRUE(empty.empty());
}

TEST(HistogramTest, RecordZeroTimesIsNoOp) {
  // Record(v, 0) must not create a phantom observation: count, min, max and
  // mean all stay untouched, and a fresh histogram stays empty.
  LatencyHistogram fresh;
  fresh.Record(999, 0);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(fresh.min(), 0u);
  EXPECT_EQ(fresh.max(), 0u);

  LatencyHistogram h;
  h.Record(100, 3);
  h.Record(7, 0);       // would corrupt min_ if counted
  h.Record(1 << 20, 0);  // would corrupt max_ if counted
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
}

// ------------------------------------------------------------- event traces

// One charged IPC round trip with an EventLog attached.
std::vector<TraceEvent> TraceOneCall(System& sys, EventLog& log) {
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  sys.AttachTraceSink(&log);
  SyscallArgs args;
  args.msg_len = 2;
  EXPECT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  sys.AttachTraceSink(nullptr);
  return log.events();
}

TEST(TraceSinkTest, SyscallEmitsPairedEntryExitWithMonotoneCycles) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EventLog log;
  const std::vector<TraceEvent> events = TraceOneCall(sys, log);
  ASSERT_FALSE(events.empty());

  // First event is the kernel entry, last is the matching exit.
  EXPECT_EQ(events.front().kind, TraceEventKind::kKernelEntry);
  EXPECT_EQ(events.back().kind, TraceEventKind::kKernelExit);

  int entries = 0;
  int exits = 0;
  int syscall_ops = 0;
  Cycles last = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.cycle, last);
    last = e.cycle;
    switch (e.kind) {
      case TraceEventKind::kKernelEntry:
        entries++;
        EXPECT_NE(e.name, nullptr);
        break;
      case TraceEventKind::kKernelExit:
        exits++;
        break;
      case TraceEventKind::kSyscallOp:
        syscall_ops++;
        EXPECT_NE(e.name, nullptr);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(syscall_ops, 1);
}

TEST(TraceSinkTest, BlockCostsExactlyCoverTheKernelPath) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EventLog log;
  const std::vector<TraceEvent> events = TraceOneCall(sys, log);
  ASSERT_GE(events.size(), 3u);

  // Every charged cycle between kernel entry and exit is attributed to
  // exactly one block window, so the block costs sum to the path duration.
  const Cycles duration = events.back().cycle - events.front().cycle;
  Cycles block_sum = 0;
  int blocks = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kBlockCost) {
      blocks++;
      block_sum += e.arg0;
      EXPECT_GE(e.cycle, events.front().cycle);
      EXPECT_LE(e.cycle, events.back().cycle);
    }
  }
  EXPECT_GT(blocks, 0);
  EXPECT_EQ(block_sum, duration);
}

TEST(TraceSinkTest, TracingChargesZeroModelledCycles) {
  System traced(KernelConfig::After(), EvalMachine(false));
  System bare(KernelConfig::After(), EvalMachine(false));
  EventLog log;
  TraceOneCall(traced, log);

  // Identical scenario without a sink.
  EventLog unused;
  {
    EndpointObj* ep = nullptr;
    const std::uint32_t cptr = bare.AddEndpoint(&ep);
    TcbObj* server = bare.AddThread(20);
    TcbObj* client = bare.AddThread(10);
    bare.kernel().DirectBlockOnRecv(server, ep);
    bare.kernel().DirectSetCurrent(client);
    SyscallArgs args;
    args.msg_len = 2;
    ASSERT_EQ(bare.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  }
  EXPECT_FALSE(log.events().empty());
  EXPECT_EQ(traced.machine().Now(), bare.machine().Now());
}

TEST(TraceSinkTest, IrqDeliverMatchesAssert) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* handler = sys.AddThread(200);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, ep);
  sys.kernel().DirectBlockOnRecv(handler, ep);
  sys.kernel().DirectSetCurrent(task);

  EventLog log;
  sys.AttachTraceSink(&log);
  sys.machine().irq().Unmask(InterruptController::kTimerLine);
  sys.machine().irq().Assert(InterruptController::kTimerLine, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  sys.AttachTraceSink(nullptr);

  const TraceEvent* assert_ev = nullptr;
  const TraceEvent* deliver_ev = nullptr;
  for (const TraceEvent& e : log.events()) {
    if (e.kind == TraceEventKind::kIrqAssert && assert_ev == nullptr) {
      assert_ev = &e;
    } else if (e.kind == TraceEventKind::kIrqDeliver && deliver_ev == nullptr) {
      deliver_ev = &e;
    }
  }
  ASSERT_NE(assert_ev, nullptr);
  ASSERT_NE(deliver_ev, nullptr);
  EXPECT_EQ(assert_ev->id, InterruptController::kTimerLine);
  EXPECT_EQ(deliver_ev->id, InterruptController::kTimerLine);
  // The deliver event carries the assert cycle and the response latency.
  EXPECT_EQ(deliver_ev->arg0, assert_ev->cycle);
  EXPECT_EQ(deliver_ev->arg1, deliver_ev->cycle - assert_ev->cycle);
  ASSERT_EQ(sys.kernel().irq_latencies().size(), 1u);
  EXPECT_EQ(sys.kernel().irq_latencies().back(), deliver_ev->arg1);
}

TEST(TraceSinkTest, PreemptedRetypeEmitsPreemptionPointEvents) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19);
  sys.kernel().DirectSetCurrent(t);

  EventLog log;
  sys.AttachTraceSink(&log);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 8'000);
  sys.AttachTraceSink(nullptr);

  EXPECT_GT(res.preemptions, 0u);
  int hits = 0;
  int taken = 0;
  for (const TraceEvent& e : log.events()) {
    if (e.kind == TraceEventKind::kPreemptPointHit) {
      hits++;
    } else if (e.kind == TraceEventKind::kPreemptPointTaken) {
      taken++;
    }
  }
  // Every preemption went through a preemption-point block whose preempted
  // exit edge was followed; most point visits do NOT preempt.
  EXPECT_EQ(taken, static_cast<int>(res.preemptions));
  EXPECT_GT(hits, taken);
  // The long-op histogram saw every delivered timer interrupt.
  EXPECT_EQ(res.irq_hist.count(), sys.kernel().irq_latencies().size());
  EXPECT_EQ(res.irq_hist.max(), res.max_irq_latency);
}

TEST(TraceSinkTest, MultiSinkFansOut) {
  EventLog a;
  EventLog b;
  MultiSink m({&a});
  m.Add(&b);
  TraceEvent e;
  e.kind = TraceEventKind::kSyscallOp;
  e.cycle = 42;
  m.OnEvent(e);
  ASSERT_EQ(a.events().size(), 1u);
  ASSERT_EQ(b.events().size(), 1u);
  EXPECT_EQ(b.events()[0].cycle, 42u);
}

// --------------------------------------------------------------------- pmu

TEST(PmuTest, DeltaMatchesCacheStats) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  const PmuSnapshot s0 = ReadPmu(sys.machine());
  const CacheStats i0 = sys.machine().l1i().stats();
  const CacheStats d0 = sys.machine().l1d().stats();

  SyscallArgs args;
  args.msg_len = 2;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);

  const PmuSnapshot d = ReadPmu(sys.machine()) - s0;
  const CacheStats i1 = sys.machine().l1i().stats();
  const CacheStats d1 = sys.machine().l1d().stats();

  // While no stats reset intervenes the monotonic PMU counters move in
  // lockstep with the per-cache statistics.
  EXPECT_EQ(d.l1i_accesses, i1.accesses - i0.accesses);
  EXPECT_EQ(d.l1i_misses, i1.misses - i0.misses);
  EXPECT_EQ(d.l1d_accesses, d1.accesses - d0.accesses);
  EXPECT_EQ(d.l1d_misses, d1.misses - d0.misses);
  EXPECT_GT(d.cycles, 0u);
  EXPECT_GT(d.instructions, 0u);
  // With the L2 disabled every L1 miss stalls for the memory penalty.
  EXPECT_GT(d.mem_stall_cycles, 0u);
  EXPECT_LT(d.mem_stall_cycles, d.cycles);
}

TEST(PmuTest, CountersSurviveStatsResetAndPollution) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  SyscallArgs args;
  args.msg_len = 2;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);

  const PmuSnapshot before = ReadPmu(sys.machine());
  EXPECT_GT(before.l1i_misses, 0u);

  // ResetStats zeroes the per-cache statistics but the PMU keeps counting
  // monotonically — snapshot deltas stay valid across polluted-cache runs.
  sys.machine().ResetStats();
  EXPECT_EQ(sys.machine().l1i().stats().misses, 0u);
  const PmuSnapshot after_reset = ReadPmu(sys.machine());
  EXPECT_EQ(after_reset.l1i_misses, before.l1i_misses);
  EXPECT_EQ(after_reset.instructions, before.instructions);

  sys.machine().PolluteCaches();
  const PmuSnapshot after_pollute = ReadPmu(sys.machine());
  EXPECT_GE(after_pollute.l1i_misses, before.l1i_misses);
  EXPECT_EQ(after_pollute.instructions, before.instructions);
}

// ----------------------------------------------------------- block profiler

TEST(BlockProfilerTest, AttributesTheWholePathAndRespectsBounds) {
  System sys(KernelConfig::After(), EvalMachine(false));
  BlockProfiler prof;
  EventLog log;
  MultiSink sink({&prof, &log});

  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(20);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);
  sys.machine().PolluteCaches();  // worst-ish case: many misses to attribute

  sys.AttachTraceSink(&sink);
  SyscallArgs args;
  args.msg_len = 2;
  ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, cptr, args), KernelExit::kDone);
  sys.AttachTraceSink(nullptr);

  const std::vector<TraceEvent>& events = log.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(prof.TotalCycles(), events.back().cycle - events.front().cycle);

  // Ranked() is sorted descending by total cycles and covers every block.
  const std::vector<BlockStats> ranked = prof.Ranked();
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].total_cycles, ranked[i].total_cycles);
  }
  Cycles ranked_sum = 0;
  for (const BlockStats& s : ranked) {
    ranked_sum += s.total_cycles;
    EXPECT_GT(s.execs, 0u);
    EXPECT_LE(s.max_cycles, s.total_cycles);
  }
  EXPECT_EQ(ranked_sum, prof.TotalCycles());

  // Even on a polluted cache, each block stays within its static all-miss
  // per-execution ceiling.
  WcetAnalyzer analyzer(sys.kernel().image(), AnalysisOptions{});
  const std::vector<Cycles> bounds = analyzer.PerBlockBounds();
  EXPECT_TRUE(prof.CheckAgainstBounds(bounds, nullptr));

  // A block id beyond the bounds table must fail the check.
  EXPECT_FALSE(prof.CheckAgainstBounds(std::vector<Cycles>{}, nullptr));
}

TEST(BlockProfilerTest, StatsForUnexecutedBlockIsZeroed) {
  BlockProfiler prof;
  const BlockStats s = prof.StatsFor(7);
  EXPECT_EQ(s.execs, 0u);
  EXPECT_EQ(s.total_cycles, 0u);
}

// --------------------------------------------------- latency.cc integration

TEST(LatencyHistogramIntegrationTest, MeasureIrqDeliveryFillsHistogram) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* handler = sys.AddThread(200);
  TcbObj* task = sys.AddThread(10);
  sys.kernel().DirectBindIrq(0, ep);
  sys.kernel().DirectBlockOnRecv(handler, ep);
  sys.kernel().DirectSetCurrent(task);

  LatencyHistogram hist;
  MeasureOptions mo;
  mo.runs = 8;
  mo.histogram = &hist;
  const Cycles worst = MeasureIrqDelivery(sys, mo);
  EXPECT_EQ(hist.count(), 8u);
  EXPECT_EQ(hist.max(), worst);
  EXPECT_LE(hist.min(), worst);
}

}  // namespace
}  // namespace pmk
