// Tests for the user-program runner: scheduling across scripted threads,
// restartable-syscall retry, preemption by interrupts, idle fast-forward.

#include <gtest/gtest.h>

#include "src/sim/runner.h"

namespace pmk {
namespace {

TEST(RunnerTest, ComputeStepsAdvanceTime) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  Runner r(&sys);
  r.SetProgram(t, {UserStep::Compute(1000)}, /*loop=*/true);
  const Cycles t0 = sys.machine().Now();
  const std::uint64_t steps = r.Run(10'000);
  EXPECT_GE(sys.machine().Now() - t0, 10'000u);
  EXPECT_GE(steps, 9u);
  EXPECT_EQ(r.StepsCompleted(t), steps);
}

TEST(RunnerTest, PingPongServerLoop) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  Runner r(&sys);
  SyscallArgs call;
  call.msg_len = 2;
  r.SetProgram(client, {UserStep::Compute(100), UserStep::Syscall(SysOp::kCall, ep_cptr, call)});
  r.SetProgram(server, {UserStep::Syscall(SysOp::kReplyRecv, ep_cptr)});
  r.Run(200'000);
  EXPECT_GT(r.StepsCompleted(client), 20u);
  EXPECT_GT(r.StepsCompleted(server), 20u);
  EXPECT_GT(sys.kernel().fastpath_hits(), 20u);
  sys.kernel().CheckInvariants();
}

TEST(RunnerTest, PreemptedSyscallIsRetriedToCompletion) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* irq_ep = nullptr;
  sys.AddEndpoint(&irq_ep);
  TcbObj* worker = sys.AddThread(10);
  UntypedObj* ut = nullptr;
  const std::uint32_t ut_cptr = sys.AddUntyped(19, &ut);
  sys.kernel().DirectSetCurrent(worker);
  sys.machine().timer().set_period(8'000);
  sys.machine().timer().Restart(sys.machine().Now());

  Runner r(&sys);
  SyscallArgs mk;
  mk.label = InvLabel::kUntypedRetype;
  mk.obj_type = ObjType::kFrame;
  mk.obj_bits = 18;  // 256 chunks: will be preempted repeatedly
  mk.dest_index = 70;
  r.SetProgram(worker, {UserStep::Syscall(SysOp::kCall, ut_cptr, mk)}, /*loop=*/false);
  r.Run(3'000'000);
  sys.machine().timer().set_period(0);
  EXPECT_EQ(r.StepsCompleted(worker), 1u);  // one completed retype...
  EXPECT_FALSE(sys.root()->slots[70].IsNull());
  EXPECT_GT(sys.kernel().irq_latencies().size(), 3u);  // ...across preemptions
  sys.kernel().CheckInvariants();
}

TEST(RunnerTest, HigherPriorityHandlerPreemptsWorker) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt = sys.AddThread(200);
  TcbObj* worker = sys.AddThread(10);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectBlockOnRecv(rt, timer_ep);
  sys.kernel().DirectSetCurrent(worker);
  sys.machine().timer().set_period(20'000);
  sys.machine().timer().Restart(sys.machine().Now());

  Runner r(&sys);
  r.SetProgram(worker, {UserStep::Compute(1'000)});
  SyscallArgs ack;
  ack.label = InvLabel::kIrqAck;
  r.SetProgram(rt, {UserStep::Compute(100), UserStep::Syscall(SysOp::kRecv, timer_cptr)});
  // The RT task must ack (unmask) the line; model via the runner hook.
  r.SetStepHook([&](TcbObj* t, std::size_t) {
    if (t == rt) {
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
    }
  });
  r.Run(300'000);
  sys.machine().timer().set_period(0);
  EXPECT_GT(r.StepsCompleted(rt), 8u);      // woken by most timer ticks
  EXPECT_GT(r.StepsCompleted(worker), 8u);  // still made progress
  for (const Cycles lat : sys.kernel().irq_latencies()) {
    EXPECT_LT(lat, 30'000u);
  }
  sys.kernel().CheckInvariants();
}

TEST(RunnerTest, IdleFastForwardsToTimer) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt = sys.AddThread(200);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectSetCurrent(rt);
  sys.machine().timer().set_period(50'000);
  sys.machine().timer().Restart(sys.machine().Now());

  Runner r(&sys);
  r.SetProgram(rt, {UserStep::Compute(200), UserStep::Syscall(SysOp::kRecv, timer_cptr)});
  r.SetStepHook([&](TcbObj*, std::size_t) {
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
  });
  // The system is idle between ticks; the runner must skip ahead instead of
  // spinning forever.
  r.Run(500'000);
  sys.machine().timer().set_period(0);
  EXPECT_GT(r.StepsCompleted(rt), 10u);
  sys.kernel().CheckInvariants();
}

}  // namespace
}  // namespace pmk
