// ShardSupervisor chaos tests: worker crashes, poison runs, watchdog kills,
// journal resume — the campaign must survive all of them with byte-identical
// results. Campaign-level golden-CSV tests live at the bottom.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/journal.h"
#include "src/engine/shard.h"
#include "src/fault/campaign.h"

namespace pmk::engine {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> PayloadFor(std::uint32_t ordinal) {
  // Deterministic, ordinal-dependent, multi-byte.
  std::vector<std::uint8_t> p;
  for (std::uint32_t i = 0; i < 16 + ordinal % 7; ++i) {
    p.push_back(static_cast<std::uint8_t>(ordinal * 37 + i));
  }
  return p;
}

std::vector<ShardTask> MakeTasks(std::uint32_t n, std::int32_t poison = -1) {
  std::vector<ShardTask> tasks;
  for (std::uint32_t i = 0; i < n; ++i) {
    tasks.push_back({"task|" + std::to_string(i), [i, poison] {
                       if (poison >= 0 && i == static_cast<std::uint32_t>(poison) &&
                           ShardSupervisor::InWorker()) {
                         std::abort();  // hostile run: SIGABRT mid-task
                       }
                       return PayloadFor(i);
                     }});
  }
  return tasks;
}

void ExpectPayloads(const ShardOutcome& out, std::uint32_t n, std::int32_t skip = -1) {
  ASSERT_EQ(out.payloads.size(), n);
  ASSERT_EQ(out.completed.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (skip >= 0 && i == static_cast<std::uint32_t>(skip)) {
      continue;
    }
    EXPECT_TRUE(out.completed[i]) << "ordinal " << i;
    EXPECT_EQ(out.payloads[i], PayloadFor(i)) << "ordinal " << i;
  }
}

class ShardChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("pmk_shard_chaos_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ShardChaosTest, InProcessReferencePath) {
  ShardOptions opts;
  opts.shards = 0;
  ShardOutcome out = ShardSupervisor(MakeTasks(11), opts).Run();
  ExpectPayloads(out, 11);
  EXPECT_TRUE(out.AllCompleted());
  EXPECT_EQ(out.workers_spawned, 0u);
  EXPECT_FALSE(out.used_fallback);
}

TEST_F(ShardChaosTest, ForkedShardsMatchReference) {
  ShardOptions opts;
  opts.shards = 3;
  ShardOutcome out = ShardSupervisor(MakeTasks(11), opts).Run();
  ExpectPayloads(out, 11);
  EXPECT_TRUE(out.AllCompleted());
  EXPECT_GE(out.workers_spawned, 3u);
  EXPECT_EQ(out.worker_deaths, 0u);
  EXPECT_EQ(out.retries, 0u);
}

TEST_F(ShardChaosTest, WorkerNotInSupervisorProcess) {
  EXPECT_FALSE(ShardSupervisor::InWorker());
  ShardOptions opts;
  opts.shards = 2;
  // Tasks observe InWorker()==true only under fork.
  std::vector<ShardTask> tasks;
  for (std::uint32_t i = 0; i < 4; ++i) {
    tasks.push_back({"w|" + std::to_string(i), [] {
                       return std::vector<std::uint8_t>{
                           static_cast<std::uint8_t>(ShardSupervisor::InWorker() ? 1 : 0)};
                     }});
  }
  ShardOutcome out = ShardSupervisor(std::move(tasks), opts).Run();
  ASSERT_TRUE(out.AllCompleted());
  for (const auto& p : out.payloads) {
    EXPECT_EQ(p, (std::vector<std::uint8_t>{1}));
  }
  EXPECT_FALSE(ShardSupervisor::InWorker());  // supervisor side unchanged
}

TEST_F(ShardChaosTest, ChaosKillIsRetriedToCompletion) {
  ShardOptions opts;
  opts.shards = 3;
  opts.max_attempts = 4;  // plenty: the chaos kill is one-shot
  opts.backoff_base_ms = 1;
  opts.chaos_kill_shard = 1;
  opts.chaos_kill_after_results = 1;
  ShardOutcome out = ShardSupervisor(MakeTasks(12), opts).Run();
  ExpectPayloads(out, 12);
  EXPECT_TRUE(out.AllCompleted());
  EXPECT_GE(out.worker_deaths, 1u);
  EXPECT_GE(out.retries, 1u);
  EXPECT_TRUE(out.quarantined.empty());
  EXPECT_TRUE(out.failed.empty());
}

TEST_F(ShardChaosTest, PoisonRunIsQuarantinedOthersComplete) {
  ShardOptions opts;
  opts.shards = 3;
  opts.max_attempts = 2;
  opts.backoff_base_ms = 1;
  ShardOutcome out = ShardSupervisor(MakeTasks(10, /*poison=*/4), opts).Run();
  ExpectPayloads(out, 10, /*skip=*/4);
  EXPECT_FALSE(out.completed[4]);
  ASSERT_EQ(out.quarantined.size(), 1u);
  EXPECT_EQ(out.quarantined[0], 4u);
  ASSERT_EQ(out.failed.size(), 1u);
  EXPECT_EQ(out.failed[0], 4u);
  EXPECT_FALSE(out.AllCompleted());
  EXPECT_GE(out.worker_deaths, opts.max_attempts);  // main wave + isolated attempt
}

TEST_F(ShardChaosTest, HungWorkerIsKilledByWatchdog) {
  ShardOptions opts;
  opts.shards = 2;
  opts.task_timeout_ms = 200;
  opts.max_attempts = 2;
  opts.backoff_base_ms = 1;
  std::vector<ShardTask> tasks = MakeTasks(6);
  tasks[3].execute = [] {
    if (ShardSupervisor::InWorker()) {
      for (;;) {
        // Wedged: no frames, no progress. The watchdog must fire.
      }
    }
    return PayloadFor(3);
  };
  ShardOutcome out = ShardSupervisor(std::move(tasks), opts).Run();
  ExpectPayloads(out, 6, /*skip=*/3);
  EXPECT_FALSE(out.completed[3]);
  EXPECT_GE(out.timeouts, 1u);
  ASSERT_EQ(out.quarantined.size(), 1u);
  EXPECT_EQ(out.quarantined[0], 3u);
  ASSERT_EQ(out.failed.size(), 1u);
}

TEST_F(ShardChaosTest, JournalResumeSkipsCompletedRuns) {
  const std::uint64_t digest = 0xABCDEF;
  ShardOptions opts;
  opts.shards = 2;
  opts.journal_dir = dir_;
  opts.journal_digest = digest;
  opts.seed = 42;

  {
    ShardOutcome first = ShardSupervisor(MakeTasks(8), opts).Run();
    ASSERT_TRUE(first.AllCompleted());
    EXPECT_EQ(first.journal_hits, 0u);
    EXPECT_FALSE(first.resumed);
  }
  // Second supervisor over the same campaign: every run is a journal hit and
  // nothing forks.
  ShardOutcome second = ShardSupervisor(MakeTasks(8), opts).Run();
  ExpectPayloads(second, 8);
  EXPECT_TRUE(second.AllCompleted());
  EXPECT_EQ(second.journal_hits, 8u);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.workers_spawned, 0u);
}

TEST_F(ShardChaosTest, JournalResumeAfterPartialRun) {
  const std::uint64_t digest = 0x5EED;
  // Pre-populate the journal with runs 0..3, as if a prior supervisor was
  // killed halfway.
  {
    ResultJournal j(dir_, digest);
    const std::vector<ShardTask> tasks = MakeTasks(9);
    for (std::uint32_t i = 0; i < 4; ++i) {
      j.Append(ResultJournal::Key(digest, tasks[i].key, 7), PayloadFor(i));
    }
  }
  ShardOptions opts;
  opts.shards = 3;
  opts.journal_dir = dir_;
  opts.journal_digest = digest;
  opts.seed = 7;
  ShardOutcome out = ShardSupervisor(MakeTasks(9), opts).Run();
  ExpectPayloads(out, 9);
  EXPECT_TRUE(out.AllCompleted());
  EXPECT_EQ(out.journal_hits, 4u);
  EXPECT_TRUE(out.resumed);
  EXPECT_GE(out.workers_spawned, 1u);
}

TEST_F(ShardChaosTest, PrepareWorkerRunsInEveryWorker) {
  ShardOptions opts;
  opts.shards = 2;
  bool parent_prepared = false;
  opts.prepare_worker = [&parent_prepared] { parent_prepared = true; };
  std::vector<ShardTask> tasks;
  for (std::uint32_t i = 0; i < 4; ++i) {
    tasks.push_back({"p|" + std::to_string(i), [i] { return PayloadFor(i); }});
  }
  ShardOutcome out = ShardSupervisor(std::move(tasks), opts).Run();
  EXPECT_TRUE(out.AllCompleted());
  // prepare_worker runs in forked children only: the parent-side flag must
  // stay untouched (copy-on-write).
  EXPECT_FALSE(parent_prepared);
}

// ---------------------------------------------------------------- campaign
//
// End-to-end: the fault campaign's CSV must be byte-identical across the
// in-process reference, forked shards, a chaos-killed-and-retried run, a
// journal resume after a simulated supervisor crash, and serial-image
// transport. Seed 42, quick-sized config.

pmk::CampaignConfig TestCampaignConfig() {
  pmk::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.exhaustive = true;
  cfg.random_runs = 8;
  cfg.storm_runs = 2;
  cfg.hostile_runs = 32;
  cfg.spurious_runs = 4;
  return cfg;
}

std::string CampaignCsv(const pmk::CampaignReport& report) {
  std::ostringstream os;
  report.WriteCsv(os);
  return os.str();
}

const std::string& GoldenCsv() {
  static const std::string golden = [] {
    const pmk::CampaignReport report = pmk::RunCampaign(TestCampaignConfig());
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_FALSE(report.shard.sharded);
    return CampaignCsv(report);
  }();
  return golden;
}

TEST_F(ShardChaosTest, CampaignShardsMatchGolden) {
  pmk::CampaignConfig cfg = TestCampaignConfig();
  cfg.shards = 3;
  const pmk::CampaignReport report = pmk::RunCampaign(cfg);
  EXPECT_EQ(CampaignCsv(report), GoldenCsv());
  EXPECT_TRUE(report.shard.sharded);
  EXPECT_GE(report.shard.workers_spawned, 3u);
  EXPECT_EQ(report.shard.worker_deaths, 0u);
}

TEST_F(ShardChaosTest, CampaignChaosKillMatchesGolden) {
  pmk::CampaignConfig cfg = TestCampaignConfig();
  cfg.shards = 3;
  cfg.journal_dir = dir_;
  cfg.shard_max_attempts = 4;
  cfg.shard_backoff_ms = 1;
  cfg.chaos_kill_shard = 1;
  cfg.chaos_kill_after_results = 2;
  const pmk::CampaignReport report = pmk::RunCampaign(cfg);
  EXPECT_EQ(CampaignCsv(report), GoldenCsv());
  EXPECT_GE(report.shard.worker_deaths, 1u);
  EXPECT_GE(report.shard.retries, 1u);
  EXPECT_EQ(report.shard.quarantined, 0u);
}

TEST_F(ShardChaosTest, CampaignResumesAfterSupervisorCrash) {
  pmk::CampaignConfig cfg = TestCampaignConfig();
  cfg.shards = 3;
  cfg.journal_dir = dir_;
  {
    const pmk::CampaignReport first = pmk::RunCampaign(cfg);
    ASSERT_EQ(CampaignCsv(first), GoldenCsv());
  }
  // Simulate a supervisor SIGKILLed mid-campaign: the journal stops at an
  // arbitrary byte (here 40%, likely mid-frame). The resumed run must
  // recover the torn tail, replay the intact prefix and re-execute the rest.
  const std::string jpath =
      (fs::path(dir_) / engine::ResultJournal::kFileName).string();
  const std::uintmax_t full = fs::file_size(jpath);
  fs::resize_file(jpath, full * 2 / 5);

  const pmk::CampaignReport resumed = pmk::RunCampaign(cfg);
  EXPECT_EQ(CampaignCsv(resumed), GoldenCsv());
  EXPECT_TRUE(resumed.shard.resumed);
  EXPECT_GT(resumed.shard.journal_hits, 0u);
  EXPECT_LT(resumed.shard.journal_hits, resumed.shard.tasks);

  // A third run is a pure replay: every row from the journal, no workers.
  const pmk::CampaignReport replay = pmk::RunCampaign(cfg);
  EXPECT_EQ(CampaignCsv(replay), GoldenCsv());
  EXPECT_EQ(replay.shard.journal_hits, replay.shard.tasks);
  EXPECT_EQ(replay.shard.workers_spawned, 0u);
}

TEST_F(ShardChaosTest, CampaignPoisonRunIsQuarantinedAndReported) {
  pmk::CampaignConfig cfg = TestCampaignConfig();
  cfg.shards = 3;
  cfg.shard_max_attempts = 2;
  cfg.shard_backoff_ms = 1;
  cfg.poison_ordinal = 5;
  const pmk::CampaignReport report = pmk::RunCampaign(cfg);
  EXPECT_EQ(report.shard.quarantined, 1u);
  EXPECT_EQ(report.shard.failed, 1u);
  EXPECT_EQ(report.failures(), 1u);  // exactly the poisoned row

  // Every row except the poisoned one matches the golden CSV line-for-line.
  std::istringstream got(CampaignCsv(report));
  std::istringstream want(GoldenCsv());
  std::string g, w;
  std::size_t line = 0;
  std::size_t mismatches = 0;
  while (std::getline(want, w)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(got, g)));
    if (g != w) {
      ++mismatches;
      // Header is line 0, so task ordinal 5 is line 6.
      EXPECT_EQ(line, 6u);
      EXPECT_NE(g.find("quarantined"), std::string::npos) << g;
    }
    ++line;
  }
  EXPECT_EQ(mismatches, 1u);
  EXPECT_FALSE(static_cast<bool>(std::getline(got, g)));
}

TEST_F(ShardChaosTest, CampaignSerialImageTransportMatchesGolden) {
  pmk::CampaignConfig cfg = TestCampaignConfig();
  cfg.shards = 2;
  cfg.shard_serial_images = true;
  const pmk::CampaignReport report = pmk::RunCampaign(cfg);
  EXPECT_EQ(CampaignCsv(report), GoldenCsv());
  EXPECT_EQ(report.shard.worker_deaths, 0u);
}

}  // namespace
}  // namespace pmk::engine
