// Tests for the simulation utilities: table/bar formatting, scenario
// builders and the measurement helpers.

#include <gtest/gtest.h>

#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Table::Us(123.456), "123.5");
  EXPECT_EQ(Table::Cyc(98765), "98765");
  EXPECT_EQ(Table::Ratio(3.256), "3.26");
  EXPECT_EQ(Table::Pct(0.459), "46%");
}

TEST(ReportTest, BarScalesAndClamps) {
  EXPECT_EQ(Bar(50, 100, 10), "#####");
  EXPECT_EQ(Bar(100, 100, 10), "##########");
  EXPECT_EQ(Bar(1000, 100, 10), "##########");  // clamped
  EXPECT_EQ(Bar(0, 100, 10), "");
  EXPECT_EQ(Bar(5, 0, 10), "");  // zero max: no bar
}

TEST(WorkloadTest, RootCNodeIsFastpathShaped) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EXPECT_EQ(sys.root()->guard_bits + sys.root()->radix_bits, 32u);
}

TEST(WorkloadTest, AddCapSkipsOccupiedSlots) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t a = sys.AddEndpoint(&ep);
  const std::uint32_t b = sys.AddEndpoint(&ep);
  EXPECT_NE(a, b);
  EXPECT_FALSE(sys.SlotOf(a)->IsNull());
  EXPECT_FALSE(sys.SlotOf(b)->IsNull());
}

TEST(WorkloadTest, DeepCapSpaceDecodesAtEveryDepth) {
  for (const std::uint32_t levels : {1u, 2u, 7u, 16u, 31u, 32u}) {
    System sys(KernelConfig::After(), EvalMachine(false));
    EndpointObj* ep = nullptr;
    sys.AddEndpoint(&ep);
    TcbObj* recv = sys.AddThread(10);
    TcbObj* send = sys.AddThread(10);
    sys.kernel().DirectBlockOnRecv(recv, ep);
    Cap target;
    target.type = ObjType::kEndpoint;
    target.obj = ep->base;
    const std::uint32_t cptr = sys.BuildDeepCapSpace(send, target, levels);
    sys.kernel().DirectSetCurrent(send);
    SyscallArgs args;
    sys.kernel().Syscall(SysOp::kSend, cptr, args);
    EXPECT_EQ(send->last_error, KError::kOk) << levels;
    EXPECT_EQ(recv->state, ThreadState::kRunning) << levels;
  }
}

TEST(WorkloadTest, DeepCapSpaceRejectsBadDepth) {
  System sys(KernelConfig::After(), EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  Cap c;
  c.type = ObjType::kEndpoint;
  c.obj = 0;
  EXPECT_THROW(sys.BuildDeepCapSpace(t, c, 0), std::logic_error);
  EXPECT_THROW(sys.BuildDeepCapSpace(t, c, 33), std::logic_error);
}

TEST(WorkloadTest, QueueSendersCyclesBadges) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  auto senders = sys.QueueSenders(ep, 6, {10, 20, 30});
  ASSERT_EQ(ep->q_len, 6u);
  EXPECT_EQ(senders[0]->blocked_badge, 10u);
  EXPECT_EQ(senders[1]->blocked_badge, 20u);
  EXPECT_EQ(senders[2]->blocked_badge, 30u);
  EXPECT_EQ(senders[3]->blocked_badge, 10u);
  sys.kernel().CheckInvariants();
}

TEST(MeasureTest, PollutionMakesRunsSlower) {
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t cptr = sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(60);
  TcbObj* send = sys.AddThread(10);
  sys.kernel().DirectBlockOnRecv(recv, ep);
  sys.kernel().DirectSetCurrent(send);
  SyscallArgs args;
  args.msg_len = 6;
  // Warm run.
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, SyscallArgs{});
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  const Cycles warm = sys.machine().Now() - t0;
  sys.kernel().Syscall(SysOp::kReplyRecv, cptr, SyscallArgs{});
  // Polluted run.
  sys.machine().PolluteCaches();
  const Cycles t1 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, cptr, args);
  const Cycles cold = sys.machine().Now() - t1;
  EXPECT_GT(cold, warm * 2);
}

TEST(MeasureTest, RunLongOpDeliversTrailingIrq) {
  // An interrupt arriving during a NON-preemptible stretch is delivered at
  // kernel exit and its (long) latency recorded.
  KernelConfig kc = KernelConfig::After();
  kc.preemptible_clearing = false;
  System sys(kc, EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 8'000);
  EXPECT_EQ(res.preemptions, 0u);
  EXPECT_GT(res.max_irq_latency, 100'000u);  // the whole blackout
}

}  // namespace
}  // namespace pmk
