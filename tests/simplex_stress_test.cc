// Stress tests for the ILP solver: adversarial LP geometry (Klee-Minty,
// degenerate/cycling instances), infeasible and unbounded detection, and
// randomized network-flow instances asserting the sparse revised simplex and
// the dense reference tableau agree exactly on status, objective and solution
// vector. Branch-and-bound truncation (max_nodes) must also be deterministic
// and mode-independent, since BENCH_wcet relies on bit-identical results from
// both solver paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/wcet/ilp.h"
#include "src/wcet/refmode.h"

namespace pmk {
namespace {

LinearProgram::Row Le(std::vector<std::uint32_t> idx, std::vector<double> val, double rhs) {
  LinearProgram::Row r;
  r.idx = std::move(idx);
  r.val = std::move(val);
  r.rhs = rhs;
  r.type = LinearProgram::RowType::kLe;
  return r;
}

LinearProgram::Row Eq(std::vector<std::uint32_t> idx, std::vector<double> val, double rhs) {
  LinearProgram::Row r = Le(std::move(idx), std::move(val), rhs);
  r.type = LinearProgram::RowType::kEq;
  return r;
}

// Runs |solve| under both solver paths and checks status/objective/x agree.
template <typename Fn>
std::pair<SolveResult, SolveResult> SolveBothModes(Fn solve) {
  wcet::SetReferenceMode(true);
  const SolveResult dense = solve();
  wcet::SetReferenceMode(false);
  const SolveResult sparse = solve();
  EXPECT_EQ(dense.status, sparse.status);
  EXPECT_NEAR(dense.objective, sparse.objective, 1e-6 * (1.0 + std::abs(dense.objective)));
  EXPECT_EQ(dense.x.size(), sparse.x.size());
  if (dense.x.size() == sparse.x.size()) {
    for (std::size_t i = 0; i < dense.x.size(); ++i) {
      EXPECT_NEAR(dense.x[i], sparse.x[i], 1e-6 * (1.0 + std::abs(dense.x[i])))
          << "x[" << i << "]";
    }
  }
  return {dense, sparse};
}

class SimplexStressTest : public ::testing::Test {
 protected:
  void TearDown() override { wcet::SetReferenceMode(false); }
};

TEST_F(SimplexStressTest, KleeMintyCubeSolvesExactly) {
  // Klee-Minty cube, the worst case for Dantzig pricing:
  //   max sum_j 2^(n-j) x_j
  //   s.t. 2 * sum_{j<i} 2^(i-j) x_j + x_i <= 5^i
  // Optimum is x = (0, ..., 0, 5^n) with objective 5^n. Exercises long pivot
  // chains well past the point where the solver switches to Bland's rule.
  constexpr std::uint32_t n = 12;
  LinearProgram lp;
  double pow2 = 1u << (n - 1);
  for (std::uint32_t j = 0; j < n; ++j, pow2 /= 2) {
    lp.AddVar(pow2);
  }
  double rhs = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    rhs *= 5;
    LinearProgram::Row row;
    double coeff = 2;
    for (std::uint32_t j = i; j-- > 0;) {
      row.idx.push_back(j);
      row.val.push_back(coeff *= 2);
    }
    row.idx.push_back(i);
    row.val.push_back(1.0);
    row.rhs = rhs;
    lp.AddRow(std::move(row));
  }
  const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dense.objective, 244140625.0, 1e-3);  // 5^12
  EXPECT_NEAR(dense.x[n - 1], 244140625.0, 1e-3);
  // The adversarial geometry must cost real pivot work (one pivot per
  // variable would mean the instance degenerated into a trivial one), yet
  // both paths must still terminate well inside the iteration budget.
  EXPECT_GE(dense.pivots, n);
  EXPECT_GE(sparse.pivots, n);
}

TEST_F(SimplexStressTest, BealeCyclingInstanceTerminates) {
  // Beale's classic example cycles forever under textbook Dantzig pricing
  // with arbitrary tie-breaking; the Bland fallback must break the cycle.
  // Optimum: x = (1/25, 0, 1, 0), objective 1/20.
  LinearProgram lp;
  lp.AddVar(0.75);
  lp.AddVar(-150.0);
  lp.AddVar(0.02);
  lp.AddVar(-6.0);
  lp.AddRow(Le({0, 1, 2, 3}, {0.25, -60.0, -1.0 / 25.0, 9.0}, 0.0));
  lp.AddRow(Le({0, 1, 2, 3}, {0.5, -90.0, -1.0 / 50.0, 3.0}, 0.0));
  lp.AddRow(Le({2}, {1.0}, 1.0));
  const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dense.objective, 0.05, 1e-6);
  EXPECT_NEAR(sparse.objective, 0.05, 1e-6);
}

TEST_F(SimplexStressTest, HighlyDegenerateVertexSolves) {
  // Many redundant constraints active at the optimum: every pivot at the
  // degenerate vertex makes zero progress, so the anti-cycling tie-breaks do
  // the work. max x+y s.t. k copies of scaled (x + y <= 10).
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  for (int k = 1; k <= 12; ++k) {
    lp.AddRow(Le({0, 1}, {static_cast<double>(k), static_cast<double>(k)}, 10.0 * k));
  }
  lp.AddRow(Le({0}, {1.0}, 4.0));
  const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dense.objective, 10.0, 1e-6);
}

TEST_F(SimplexStressTest, InfeasibleDetectedInBothModes) {
  // x0 <= 1 together with -x0 <= -2 (i.e. x0 >= 2).
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddRow(Le({0}, {1.0}, 1.0));
  lp.AddRow(Le({0}, {-1.0}, -2.0));
  const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
  EXPECT_EQ(dense.status, SolveStatus::kInfeasible);
  EXPECT_EQ(sparse.status, SolveStatus::kInfeasible);

  // And through branch-and-bound as well.
  const auto [di, si] = SolveBothModes([&] { return SolveIlp(lp); });
  EXPECT_EQ(di.status, SolveStatus::kInfeasible);
  EXPECT_EQ(si.status, SolveStatus::kInfeasible);
}

TEST_F(SimplexStressTest, UnboundedDetectedInBothModes) {
  // max x0 with only x0 - x1 <= 1: push x1 up and x0 follows forever.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(0.0);
  lp.AddRow(Le({0, 1}, {1.0, -1.0}, 1.0));
  const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
  EXPECT_EQ(dense.status, SolveStatus::kUnbounded);
  EXPECT_EQ(sparse.status, SolveStatus::kUnbounded);
}

TEST_F(SimplexStressTest, FractionalRelaxationBranches) {
  // max x + y s.t. 2x + 2y <= 3: relaxation peaks at 1.5, the ILP at 1.
  LinearProgram lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  lp.AddRow(Le({0, 1}, {2.0, 2.0}, 3.0));
  const auto [relax_d, relax_s] = SolveBothModes([&] { return SolveLp(lp); });
  EXPECT_NEAR(relax_d.objective, 1.5, 1e-6);
  const auto [ilp_d, ilp_s] = SolveBothModes([&] { return SolveIlp(lp); });
  ASSERT_EQ(ilp_d.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ilp_d.objective, 1.0, 1e-6);
  EXPECT_NEAR(ilp_s.objective, 1.0, 1e-6);
  for (const double v : ilp_d.x) {
    EXPECT_NEAR(v, std::round(v), 1e-6);
  }
}

TEST_F(SimplexStressTest, MaxNodesTruncationIsDeterministic) {
  // A knapsack-flavoured instance whose relaxation is fractional at several
  // branch-and-bound depths. Truncating the node budget must yield the same
  // status and incumbent from both solver paths at every budget, because the
  // node ordering and branching variable choice are shared — this pins the
  // explored-node order, not just the converged answer.
  LinearProgram lp;
  const double weights[] = {7, 5, 4, 3};
  const double values[] = {9, 6, 5, 3};
  LinearProgram::Row cap;
  for (std::uint32_t j = 0; j < 4; ++j) {
    lp.AddVar(values[j]);
    cap.idx.push_back(j);
    cap.val.push_back(weights[j]);
    lp.AddRow(Le({j}, {1.0}, 1.0));  // binary-style upper bounds
  }
  cap.rhs = 10.0;
  lp.AddRow(std::move(cap));

  std::vector<double> objectives;
  for (std::uint32_t budget = 1; budget <= 16; ++budget) {
    const auto [dense, sparse] = SolveBothModes([&] { return SolveIlp(lp, budget); });
    objectives.push_back(dense.objective);
  }
  // The full solve (large budget) must reach the true optimum: items 1+2+3
  // (weights 5+4+3 = 12 > 10, so actually 7+3 vs 5+4 ... assert against a
  // brute-force enumeration instead of hand arithmetic).
  double best = 0;
  for (unsigned mask = 0; mask < 16; ++mask) {
    double w = 0;
    double v = 0;
    for (unsigned j = 0; j < 4; ++j) {
      if (mask & (1u << j)) {
        w += weights[j];
        v += values[j];
      }
    }
    if (w <= 10.0 && v > best) {
      best = v;
    }
  }
  const auto [full_d, full_s] = SolveBothModes([&] { return SolveIlp(lp); });
  ASSERT_EQ(full_d.status, SolveStatus::kOptimal);
  EXPECT_NEAR(full_d.objective, best, 1e-6);
  // Incumbent quality is monotone in the node budget.
  for (std::size_t i = 1; i < objectives.size(); ++i) {
    EXPECT_GE(objectives[i] + 1e-9, objectives[i - 1]);
  }
}

// Builds a random layered max-flow-with-profits LP: source -> layer A ->
// layer B -> sink, random integer capacities and per-edge profits,
// conservation equalities on the internal nodes. Network matrices are the
// production workload shape (IPET flow constraints), so this is the
// distribution where sparse-vs-dense disagreement would matter most.
LinearProgram RandomNetworkLp(SplitMix64& rng, std::uint32_t width) {
  LinearProgram lp;
  std::vector<std::uint32_t> sa(width), ab(width * width), bt(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    sa[i] = lp.AddVar(1.0 + static_cast<double>(rng.Below(5)));
  }
  for (std::uint32_t i = 0; i < width; ++i) {
    for (std::uint32_t j = 0; j < width; ++j) {
      ab[i * width + j] = lp.AddVar(1.0 + static_cast<double>(rng.Below(5)));
    }
  }
  for (std::uint32_t j = 0; j < width; ++j) {
    bt[j] = lp.AddVar(1.0 + static_cast<double>(rng.Below(5)));
  }
  for (std::uint32_t v = 0; v < lp.num_vars; ++v) {
    lp.AddRow(Le({v}, {1.0}, 1.0 + static_cast<double>(rng.Below(9))));
  }
  // Conservation at layer-A node i: sa_i == sum_j ab_ij.
  for (std::uint32_t i = 0; i < width; ++i) {
    LinearProgram::Row row;
    row.idx.push_back(sa[i]);
    row.val.push_back(1.0);
    for (std::uint32_t j = 0; j < width; ++j) {
      row.idx.push_back(ab[i * width + j]);
      row.val.push_back(-1.0);
    }
    row.type = LinearProgram::RowType::kEq;
    lp.AddRow(std::move(row));
  }
  // Conservation at layer-B node j: sum_i ab_ij == bt_j.
  for (std::uint32_t j = 0; j < width; ++j) {
    LinearProgram::Row row;
    for (std::uint32_t i = 0; i < width; ++i) {
      row.idx.push_back(ab[i * width + j]);
      row.val.push_back(1.0);
    }
    row.idx.push_back(bt[j]);
    row.val.push_back(-1.0);
    row.type = LinearProgram::RowType::kEq;
    lp.AddRow(std::move(row));
  }
  // Total outflow cap keeps the instance bounded even if every edge is wide.
  LinearProgram::Row total;
  for (std::uint32_t i = 0; i < width; ++i) {
    total.idx.push_back(sa[i]);
    total.val.push_back(1.0);
  }
  total.rhs = static_cast<double>(2 + rng.Below(3 * width));
  lp.AddRow(std::move(total));
  return lp;
}

TEST_F(SimplexStressTest, RandomizedNetworkFlowsMatchAcrossModes) {
  SplitMix64 rng(0x5eed5eedULL);
  for (int trial = 0; trial < 24; ++trial) {
    SplitMix64 stream = rng.Split(static_cast<std::uint64_t>(trial));
    const std::uint32_t width = 2 + static_cast<std::uint32_t>(stream.Below(3));
    const LinearProgram lp = RandomNetworkLp(stream, width);
    const auto [dense, sparse] = SolveBothModes([&] { return SolveLp(lp); });
    ASSERT_EQ(dense.status, SolveStatus::kOptimal) << "trial " << trial;
    // Integral data over a network matrix: branch-and-bound must agree with
    // itself across modes too, and can only tighten the relaxation.
    const auto [ilp_d, ilp_s] = SolveBothModes([&] { return SolveIlp(lp); });
    ASSERT_EQ(ilp_d.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(ilp_d.objective, dense.objective + 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pmk
