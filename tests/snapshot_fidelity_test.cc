// Snapshot fidelity: a checkpoint fork must be indistinguishable from a
// freshly booted system. Each canonical operation is driven twice — once on a
// factory-built system, once on a fork of a frozen checkpoint of the same
// factory — and the complete observable machine state is compared
// cycle-for-cycle: final cycle counter, every PMU counter, per-cache hit/miss
// statistics, the kernel's recorded IRQ latencies, and the full trace-event
// stream. Any unremapped pointer or uncopied state surfaces here.

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/campaign.h"
#include "src/fault/injector.h"
#include "src/obs/trace_sink.h"

namespace pmk {
namespace {

// Everything observable about a completed run.
struct DriveResult {
  Cycles now = 0;
  HwCounters hw;
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::vector<Cycles> irq_latencies;
  std::uint64_t fastpath_hits = 0;
  std::vector<TraceEvent> events;
};

// Drives |inst|'s operation to completion under |plan| with full tracing,
// mirroring the fault engine's restart loop, and captures the final state.
DriveResult Drive(OpInstance inst, const InjectionPlan& plan) {
  System& sys = *inst.sys;
  EventLog log;
  sys.AttachTraceSink(&log);
  FaultInjector inj(&sys.machine());
  inj.SetPlan(plan);
  sys.kernel().exec().set_fault_hook(&inj);

  for (;;) {
    const KernelExit e = sys.kernel().Syscall(inst.op, inst.cptr, inst.args);
    sys.kernel().CheckInvariants();
    if (e != KernelExit::kPreempted) {
      break;
    }
    for (const InjectionAction& a : plan.actions) {
      for (std::uint32_t i = 0; i < a.burst; ++i) {
        sys.machine().irq().Unmask((a.line + i) % InterruptController::kNumLines);
      }
    }
    if (inst.on_preempted) {
      inst.on_preempted(sys);
    }
  }
  while (sys.machine().irq().AnyPending()) {
    sys.kernel().HandleIrqEntry();
  }
  sys.kernel().CheckInvariants();
  if (inst.check_done) {
    inst.check_done(sys);
  }

  DriveResult r;
  r.now = sys.machine().Now();
  r.hw = sys.machine().counters();
  r.l1i = sys.machine().l1i().stats();
  r.l1d = sys.machine().l1d().stats();
  r.l2 = sys.machine().l2().stats();
  r.irq_latencies = sys.kernel().irq_latencies();
  r.fastpath_hits = sys.kernel().fastpath_hits();
  r.events = log.events();
  return r;
}

void ExpectIdentical(const DriveResult& fresh, const DriveResult& fork) {
  EXPECT_EQ(fresh.now, fork.now);

  EXPECT_EQ(fresh.hw.instructions, fork.hw.instructions);
  EXPECT_EQ(fresh.hw.l1i_accesses, fork.hw.l1i_accesses);
  EXPECT_EQ(fresh.hw.l1i_misses, fork.hw.l1i_misses);
  EXPECT_EQ(fresh.hw.l1d_accesses, fork.hw.l1d_accesses);
  EXPECT_EQ(fresh.hw.l1d_misses, fork.hw.l1d_misses);
  EXPECT_EQ(fresh.hw.l2_accesses, fork.hw.l2_accesses);
  EXPECT_EQ(fresh.hw.l2_misses, fork.hw.l2_misses);
  EXPECT_EQ(fresh.hw.branches, fork.hw.branches);
  EXPECT_EQ(fresh.hw.branch_mispredicts, fork.hw.branch_mispredicts);
  EXPECT_EQ(fresh.hw.mem_stall_cycles, fork.hw.mem_stall_cycles);

  const auto expect_cache = [](const CacheStats& a, const CacheStats& b) {
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
  };
  expect_cache(fresh.l1i, fork.l1i);
  expect_cache(fresh.l1d, fork.l1d);
  expect_cache(fresh.l2, fork.l2);

  EXPECT_EQ(fresh.irq_latencies, fork.irq_latencies);
  EXPECT_EQ(fresh.fastpath_hits, fork.fastpath_hits);

  ASSERT_EQ(fresh.events.size(), fork.events.size());
  for (std::size_t i = 0; i < fresh.events.size(); ++i) {
    const TraceEvent& a = fresh.events[i];
    const TraceEvent& b = fork.events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
    EXPECT_STREQ(a.name, b.name) << "event " << i;
    EXPECT_EQ(a.id, b.id) << "event " << i;
    EXPECT_EQ(a.arg0, b.arg0) << "event " << i;
    EXPECT_EQ(a.arg1, b.arg1) << "event " << i;
    EXPECT_EQ(a.arg2, b.arg2) << "event " << i;
  }
}

InjectionPlan PlanAtOrdinal(std::uint64_t ordinal, std::uint32_t line = 5) {
  InjectionPlan plan;
  InjectionAction a;
  a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
  a.at = ordinal;
  a.line = line;
  plan.actions.push_back(a);
  return plan;
}

TEST(SnapshotFidelityTest, ForkMatchesFreshBootOnUninjectedRun) {
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    const ScenarioCheckpoint ckpt(factory);
    ExpectIdentical(Drive(factory(), InjectionPlan{}), Drive(ckpt.Fork(), InjectionPlan{}));
  }
}

TEST(SnapshotFidelityTest, ForkMatchesFreshBootUnderInjection) {
  // The preempt-restart path exercises scheduler queues, endpoint queues and
  // the abort four-tuple in the cloned heap, not just the straight-line op.
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    const ScenarioCheckpoint ckpt(factory);
    const InjectionPlan plan = PlanAtOrdinal(2);
    ExpectIdentical(Drive(factory(), plan), Drive(ckpt.Fork(), plan));
  }
}

TEST(SnapshotFidelityTest, ForksAreIndependentOfSourceAndSiblings) {
  // Mutating one fork (an aggressive multi-line plan) must leave the frozen
  // image untouched: a later fork still matches a fresh boot exactly.
  const OpFactory factory = MakeEpDeleteCase();
  const ScenarioCheckpoint ckpt(factory);

  InjectionPlan aggressive = PlanAtOrdinal(0);
  aggressive.actions[0].burst = 4;
  Drive(ckpt.Fork(), aggressive);

  ExpectIdentical(Drive(factory(), InjectionPlan{}), Drive(ckpt.Fork(), InjectionPlan{}));
}

TEST(SnapshotFidelityTest, CloneAfterPreemptedExitContinuesIdentically) {
  // Clone mid-scenario — after the first preempted exit, with a serviced IRQ
  // in the latency log, masked lines in the controller and the actor in its
  // restart state — then finish both the original and the clone and compare.
  for (const auto& [name, factory] : CanonicalOps()) {
    SCOPED_TRACE(name);
    OpInstance inst = factory();
    System& sys = *inst.sys;

    FaultInjector inj(&sys.machine());
    inj.SetPlan(PlanAtOrdinal(0));
    sys.kernel().exec().set_fault_hook(&inj);
    const KernelExit e = sys.kernel().Syscall(inst.op, inst.cptr, inst.args);
    sys.kernel().exec().set_fault_hook(nullptr);
    ASSERT_EQ(e, KernelExit::kPreempted) << "op exposed no preemption point";
    if (inst.on_preempted) {
      inst.on_preempted(sys);
    }

    const std::unique_ptr<System> clone = sys.Clone();

    const auto finish = [&inst](System& s) {
      while (s.kernel().Syscall(inst.op, inst.cptr, inst.args) == KernelExit::kPreempted) {
      }
      while (s.machine().irq().AnyPending()) {
        s.kernel().HandleIrqEntry();
      }
      s.kernel().CheckInvariants();
      if (inst.check_done) {
        inst.check_done(s);
      }
      DriveResult r;
      r.now = s.machine().Now();
      r.hw = s.machine().counters();
      r.l1i = s.machine().l1i().stats();
      r.l1d = s.machine().l1d().stats();
      r.l2 = s.machine().l2().stats();
      r.irq_latencies = s.kernel().irq_latencies();
      r.fastpath_hits = s.kernel().fastpath_hits();
      return r;
    };
    ExpectIdentical(finish(sys), finish(*clone));
  }
}

TEST(SnapshotFidelityTest, CloneRejectsUnknownHeapPointers) {
  // The remap is loud by design: a clone of a heap holding a pointer to an
  // object outside that heap must throw, not alias across heaps.
  OpInstance a = MakeEpDeleteCase()();
  OpInstance b = MakeEpDeleteCase()();
  TcbObj* foreign = b.sys->AddThread(10);
  a.sys->kernel().DirectSetCurrent(foreign);
  EXPECT_THROW(a.sys->Clone(), std::logic_error);
}

}  // namespace
}  // namespace pmk
