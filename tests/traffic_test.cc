// Integration tests for the src/load saturation harness: fleet construction
// (badged caps, fastpath-eligible cspace), the two-phase driver's ack/drain
// discipline under load, the wire codec, byte-identity of a sweep across
// --jobs and --shards parallelism (the checkpoint-fork determinism
// contract), and live enforcement of the analyzed interrupt-response bound.

#include <gtest/gtest.h>

#include <sstream>

#include "src/load/fleet.h"
#include "src/load/traffic.h"
#include "src/obs/tail_observatory.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk::load {
namespace {

// Small but non-trivial grid: every shape, two load points, enough clients
// to exercise the fleet CNode path. Sub-second even under sanitizers.
TrafficOptions SmallSweep() {
  TrafficOptions opts;
  opts.seed = 42;
  opts.clients = 50;
  opts.servers = 4;
  opts.load_gaps = {4096, 512};
  opts.run_cycles = 60'000;
  return opts;
}

std::vector<std::vector<std::uint8_t>> Fingerprint(const TrafficReport& r) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(r.results.size());
  for (const TrafficResult& res : r.results) {
    out.push_back(EncodeTrafficResult(res));
  }
  return out;
}

TEST(ClientFleetTest, DirectModeBuildsBadgedFastpathEligibleFleet) {
  System sys(KernelConfig::After(), EvalMachine(false));
  FleetSpec spec;
  spec.clients = 100;
  spec.servers = 4;
  spec.badge_base = 500;
  const Fleet fleet = BuildClientFleet(sys, spec);

  ASSERT_EQ(fleet.clients.size(), 100u);
  ASSERT_EQ(fleet.servers.size(), 4u);
  ASSERT_EQ(fleet.endpoints.size(), 4u);

  // The fleet CNode is one-level (guard + radix == 32): cptrs decode in a
  // single step, keeping badged IPC on the fastpath.
  ASSERT_NE(fleet.fleet_cnode, nullptr);
  EXPECT_EQ(fleet.fleet_cnode->guard_bits + fleet.fleet_cnode->radix_bits, 32);
  EXPECT_GE(1u << fleet.fleet_cnode->radix_bits, 100u);

  for (std::uint32_t i = 0; i < 100; ++i) {
    // Every client: resumed, rooted at the fleet CNode, holding a cap to its
    // round-robin server endpoint with a unique badge.
    EXPECT_EQ(fleet.clients[i]->state, ThreadState::kRunning);
    EXPECT_EQ(fleet.clients[i]->cspace_root, fleet.fleet_cnode->base);
    const Cap& cap = fleet.fleet_cnode->slots[fleet.client_cptrs[i]].cap;
    EXPECT_EQ(cap.type, ObjType::kEndpoint);
    EXPECT_EQ(cap.obj, fleet.endpoints[i % 4]->base);
    EXPECT_EQ(cap.badge, 500 + i);
  }
  sys.kernel().CheckInvariants();
}

TEST(ClientFleetTest, ResolveFleetRebindsPointersInAClone) {
  System sys(KernelConfig::After(), EvalMachine(false));
  FleetSpec spec;
  spec.clients = 10;
  spec.servers = 2;
  const Fleet fleet = BuildClientFleet(sys, spec);

  const auto clone = sys.Clone();
  const Fleet resolved = ResolveFleet(*clone, fleet);
  for (std::size_t i = 0; i < resolved.clients.size(); ++i) {
    EXPECT_NE(resolved.clients[i], fleet.clients[i]);  // clone owns its objects
    EXPECT_EQ(resolved.clients[i]->base, fleet.clients[i]->base);
  }
  EXPECT_NE(resolved.fleet_cnode, fleet.fleet_cnode);
  EXPECT_EQ(resolved.fleet_cnode->base, fleet.fleet_cnode->base);
}

TEST(TrafficCodecTest, EncodeDecodeRoundTripsEveryField) {
  TrafficResult r;
  r.shape = "storm";
  r.load_point = 3;
  r.frame_gap = 512;
  r.irq_hist.Record(1000);
  r.irq_hist.Record(2500);
  r.frame_delay.Record(77);
  r.frames_offered = 123;
  r.frames_dropped = 4;
  r.frames_processed = 119;
  r.driver_acks = 60;
  r.client_calls = 31;
  r.requests_served = 29;
  r.spurious_acks = 2;
  r.coalesced_asserts = 17;
  r.steps = 999;

  const TrafficResult d = DecodeTrafficResult(EncodeTrafficResult(r));
  EXPECT_EQ(EncodeTrafficResult(d), EncodeTrafficResult(r));
  EXPECT_EQ(d.shape, "storm");
  EXPECT_EQ(d.irq_hist.count(), 2u);
  EXPECT_EQ(d.irq_hist.max(), 2500u);
  EXPECT_EQ(d.coalesced_asserts, 17u);
}

TEST(TrafficSweepTest, ByteIdenticalAcrossJobs) {
  TrafficOptions opts = SmallSweep();
  opts.jobs = 1;
  const TrafficReport serial = RunTrafficSweep(opts);
  opts.jobs = 4;
  const TrafficReport threaded = RunTrafficSweep(opts);
  ASSERT_EQ(serial.results.size(), 6u);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(threaded));
  // Renderings derive from the results, so they match byte for byte too.
  EXPECT_EQ(RenderTrafficTable(serial), RenderTrafficTable(threaded));
  std::ostringstream a;
  std::ostringstream b;
  WriteTrafficCsv(serial, a);
  WriteTrafficCsv(threaded, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TrafficSweepTest, ByteIdenticalAcrossShardSupervision) {
  TrafficOptions opts = SmallSweep();
  const TrafficReport inproc = RunTrafficSweep(opts);
  opts.shards = 2;
  const TrafficReport sharded = RunTrafficSweep(opts);
  EXPECT_TRUE(sharded.shard.sharded);
  EXPECT_EQ(sharded.shard.tasks, 6u);
  EXPECT_EQ(Fingerprint(inproc), Fingerprint(sharded));
}

TEST(TrafficSweepTest, RerunFromSameOptionsReplaysIdentically) {
  // The boot-once/fork-per-scenario pattern: two full sweeps re-boot and
  // re-fork everything, so equality here proves the forked worlds (ring,
  // source, fleet, driver) carry no hidden host state.
  const TrafficReport a = RunTrafficSweep(SmallSweep());
  const TrafficReport b = RunTrafficSweep(SmallSweep());
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
}

TEST(TrafficSweepTest, SeedChangesTheTrafficButNotTheShape) {
  TrafficOptions opts = SmallSweep();
  const TrafficReport a = RunTrafficSweep(opts);
  opts.seed = 43;
  const TrafficReport b = RunTrafficSweep(opts);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_NE(Fingerprint(a), Fingerprint(b));
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].shape, b.results[i].shape);
    EXPECT_EQ(a.results[i].frame_gap, b.results[i].frame_gap);
  }
}

TEST(TrafficSweepTest, TwoPhaseDriverServicesTheRing) {
  const TrafficReport report = RunTrafficSweep(SmallSweep());
  for (const TrafficResult& r : report.results) {
    // The device offered frames and the driver drained them: nothing is
    // processed that was not offered, drops are accounted, and the driver
    // acked at least once per drain batch.
    EXPECT_GT(r.frames_offered, 0u) << r.shape << " g" << r.frame_gap;
    EXPECT_LE(r.frames_processed + r.frames_dropped, r.frames_offered);
    EXPECT_GT(r.driver_acks, 0u);
    EXPECT_GT(r.irq_hist.count(), 0u);
    // The deferred phase ran: per-frame delays were measured for every
    // processed frame.
    EXPECT_EQ(r.frame_delay.count(), r.frames_processed);
  }
  // The hot load point (gap 512) must actually overrun the default ring —
  // otherwise this suite isn't testing saturation at all.
  std::uint64_t total_dropped = 0;
  for (const TrafficResult& r : report.results) {
    total_dropped += r.frames_dropped;
  }
  EXPECT_GT(total_dropped, 0u);
}

TEST(TrafficSweepTest, NonStormScenariosStayUnderAnalyzedBound) {
  const auto img = BuildKernelImage(KernelConfig::After());
  const Cycles bound = WcetAnalyzer(*img, AnalysisOptions{}).InterruptResponseBound();
  const TrafficReport report = RunTrafficSweep(SmallSweep());

  obs::TailObservatory observatory;
  observatory.SetBound("after", bound);
  FeedObservatory(report, observatory, "after");
  EXPECT_FALSE(observatory.AnyExceedance());

  for (const TrafficResult& r : report.results) {
    if (r.shape != "storm") {
      EXPECT_LE(r.irq_hist.max(), bound) << r.shape << " g" << r.frame_gap;
    }
  }
  // Storm rows exist and are marked unenforced (informational).
  bool storm_seen = false;
  for (const auto& row : observatory.Rows()) {
    if (row.scenario.find("traffic/storm/") == 0) {
      storm_seen = true;
      EXPECT_FALSE(row.enforced);
    }
  }
  EXPECT_TRUE(storm_seen);
}

}  // namespace
}  // namespace pmk::load
