// Reference-vs-optimized equivalence for the whole WCET pipeline.
//
// The memoized analyzer (sparse revised-simplex ILP, closed-form loop
// bounds, shared cost caches) must be bit-identical to the unmemoized
// reference twin (dense tableau, per-call re-derivation) on every public
// query — Analyze, EvaluateTrace, InterruptResponseBound, PerBlockBounds —
// across both kernel generations, all cache configurations and all four
// entry points. Also checks memoization itself: repeated and concurrent
// Analyze calls on one analyzer return the exact same result.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/engine/job_pool.h"
#include "src/kernel/image.h"
#include "src/wcet/analysis.h"
#include "src/wcet/refmode.h"

namespace pmk {
namespace {

constexpr EntryPoint kEntries[] = {EntryPoint::kSyscall, EntryPoint::kUndefined,
                                   EntryPoint::kPageFault, EntryPoint::kInterrupt};

void ExpectResultsEqual(const EntryResult& ref, const EntryResult& opt) {
  EXPECT_EQ(ref.status, opt.status);
  EXPECT_EQ(ref.wcet, opt.wcet);
  EXPECT_DOUBLE_EQ(ref.micros, opt.micros);
  EXPECT_EQ(ref.nodes, opt.nodes);
  EXPECT_EQ(ref.edges, opt.edges);
  EXPECT_EQ(ref.loops_bounded_auto, opt.loops_bounded_auto);
  EXPECT_EQ(ref.loops_bounded_annot, opt.loops_bounded_annot);
  EXPECT_EQ(ref.worst_trace.blocks, opt.worst_trace.blocks);
}

std::vector<AnalysisOptions> ConfigMatrix() {
  std::vector<AnalysisOptions> configs(4);
  configs[1].cache_pinning = true;
  configs[2].l2_enabled = true;
  configs[3].l2_enabled = true;
  configs[3].l2_kernel_pinning = true;
  return configs;
}

class WcetEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { wcet::SetReferenceMode(false); }
};

TEST_F(WcetEquivalenceTest, AnalyzeMatchesReferenceEverywhere) {
  for (const bool after : {false, true}) {
    const auto img = BuildKernelImage(after ? KernelConfig::After() : KernelConfig::Before());
    for (const AnalysisOptions& opts : ConfigMatrix()) {
      // The mode flag is sampled at construction: the reference analyzer
      // re-derives everything per call, the optimized one memoizes.
      wcet::SetReferenceMode(true);
      const WcetAnalyzer ref(*img, opts);
      wcet::SetReferenceMode(false);
      const WcetAnalyzer opt(*img, opts);
      for (const EntryPoint e : kEntries) {
        const EntryResult r = ref.Analyze(e);
        const EntryResult o = opt.Analyze(e);
        SCOPED_TRACE(std::string(after ? "after/" : "before/") + EntryPointName(e));
        ExpectResultsEqual(r, o);
      }
    }
  }
}

TEST_F(WcetEquivalenceTest, DerivedQueriesMatchReference) {
  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions opts;
  opts.l2_enabled = true;
  wcet::SetReferenceMode(true);
  const WcetAnalyzer ref(*img, opts);
  wcet::SetReferenceMode(false);
  const WcetAnalyzer opt(*img, opts);

  // Forced-path evaluation of a real worst-case trace.
  const Trace worst = opt.Analyze(EntryPoint::kSyscall).worst_trace;
  ASSERT_FALSE(worst.blocks.empty());
  EXPECT_EQ(ref.EvaluateTrace(worst), opt.EvaluateTrace(worst));

  EXPECT_EQ(ref.InterruptResponseBound(), opt.InterruptResponseBound());
  EXPECT_EQ(ref.PerBlockBounds(), opt.PerBlockBounds());
}

TEST_F(WcetEquivalenceTest, MemoizedAnalyzeIsStable) {
  const auto img = BuildKernelImage(KernelConfig::After());
  const WcetAnalyzer an(*img, AnalysisOptions{});
  const EntryResult first = an.Analyze(EntryPoint::kSyscall);
  for (int i = 0; i < 3; ++i) {
    ExpectResultsEqual(first, an.Analyze(EntryPoint::kSyscall));
  }
}

TEST_F(WcetEquivalenceTest, ConcurrentAnalyzeIsConsistent) {
  // One analyzer driven from parallel workers: the call_once-guarded caches
  // must hand every thread the same memoized result, including when several
  // threads race to populate an entry for the first time.
  const auto img = BuildKernelImage(KernelConfig::After());
  const WcetAnalyzer an(*img, AnalysisOptions{});
  const auto results = engine::ParallelMap<EntryResult>(
      8, 4, [&](std::size_t i) { return an.Analyze(kEntries[i % 4]); });
  for (std::size_t i = 4; i < results.size(); ++i) {
    ExpectResultsEqual(results[i - 4], results[i]);
  }
}

}  // namespace
}  // namespace pmk
