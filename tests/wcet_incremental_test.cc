// Incremental WCET engine: bit-identity against cold re-analysis, digest
// stage precision, warm-started simplex bookkeeping, and the query-daemon
// core under concurrent queries and edits.
//
// The load-bearing property is the PR-5-style identity gate: after ANY
// sequence of supported post-layout edits (loop-bound annotations, absolute
// execution bounds, preemption-point toggles), every answer the incremental
// analyzer gives must be bit-identical to a fresh cold WcetAnalyzer over the
// same edited image — randomized edit scripts probe that across both kernel
// configurations. The service tests double as the TSan workload for the
// shared/exclusive lock discipline (ctest -R WcetIncremental under
// -fsanitize=thread in CI).

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/wire.h"
#include "src/kir/digest.h"
#include "src/obs/metrics.h"
#include "src/wcet/analysis.h"
#include "src/wcet/incremental.h"
#include "src/wcet/serve.h"

namespace pmk {
namespace {

using engine::WireReader;
using engine::WireWriter;
using wcet::EditField;
using wcet::ServeOp;
using wcet::WcetService;

constexpr EntryPoint kAllEntries[] = {EntryPoint::kSyscall, EntryPoint::kUndefined,
                                      EntryPoint::kPageFault, EntryPoint::kInterrupt};

// One randomized supported edit. Drawn from the live block table so scripts
// stay within the post-layout mutation contract.
struct Edit {
  BlockId block = 0;
  EditField field = EditField::kLoopBoundAnnotation;
  std::uint64_t value = 0;
};

Edit RandomEdit(const Program& prog, std::mt19937& rng) {
  std::vector<Edit> candidates;
  for (BlockId id = 0; id < prog.num_blocks(); ++id) {
    const Block& b = prog.block(id);
    if (b.loop_bound_annotation > 0) {
      // Perturb within a small range so bounds stay feasible.
      candidates.push_back({id, EditField::kLoopBoundAnnotation,
                            b.loop_bound_annotation + (rng() % 4)});
    }
    if (b.absolute_exec_bound > 0) {
      candidates.push_back({id, EditField::kAbsoluteExecBound,
                            b.absolute_exec_bound + (rng() % 4)});
    }
    if (b.is_preemption_point) {
      candidates.push_back({id, EditField::kIsPreemptionPoint, rng() % 2});
    }
  }
  EXPECT_FALSE(candidates.empty());
  return candidates[rng() % candidates.size()];
}

void ApplyEdit(Program& prog, const Edit& e) {
  Block& b = prog.mutable_block(e.block);
  switch (e.field) {
    case EditField::kLoopBoundAnnotation:
      b.loop_bound_annotation = static_cast<std::uint32_t>(e.value);
      break;
    case EditField::kAbsoluteExecBound:
      b.absolute_exec_bound = static_cast<std::uint32_t>(e.value);
      break;
    case EditField::kIsPreemptionPoint:
      b.is_preemption_point = e.value != 0;
      break;
  }
}

void ExpectResultsIdentical(const EntryResult& inc, const EntryResult& cold) {
  EXPECT_EQ(inc.status, cold.status);
  EXPECT_EQ(inc.wcet, cold.wcet);
  EXPECT_EQ(inc.micros, cold.micros);
  EXPECT_EQ(inc.nodes, cold.nodes);
  EXPECT_EQ(inc.edges, cold.edges);
  EXPECT_EQ(inc.loops_bounded_auto, cold.loops_bounded_auto);
  EXPECT_EQ(inc.loops_bounded_annot, cold.loops_bounded_annot);
  EXPECT_EQ(inc.worst_trace.blocks, cold.worst_trace.blocks);
}

// ------------------------------------------------------------ digest stages

TEST(BlockDigests, StagePrecision) {
  const auto image = BuildKernelImage(KernelConfig::After());
  Program& prog = image->prog;

  // Find one annotated loop head and one preemption point.
  BlockId annot = kNoBlock;
  BlockId preempt = kNoBlock;
  for (BlockId id = 0; id < prog.num_blocks(); ++id) {
    if (annot == kNoBlock && prog.block(id).loop_bound_annotation > 0) {
      annot = id;
    }
    if (preempt == kNoBlock && prog.block(id).is_preemption_point) {
      preempt = id;
    }
  }
  ASSERT_NE(annot, kNoBlock);
  ASSERT_NE(preempt, kNoBlock);

  const BlockStageDigests before_annot = ComputeBlockDigests(prog, annot);
  prog.mutable_block(annot).loop_bound_annotation += 1;
  const BlockStageDigests after_annot = ComputeBlockDigests(prog, annot);
  // An annotation edit moves exactly the loop stage.
  EXPECT_EQ(before_annot.of(DigestStage::kStructure), after_annot.of(DigestStage::kStructure));
  EXPECT_NE(before_annot.of(DigestStage::kLoops), after_annot.of(DigestStage::kLoops));
  EXPECT_EQ(before_annot.of(DigestStage::kCost), after_annot.of(DigestStage::kCost));
  EXPECT_EQ(before_annot.of(DigestStage::kIpet), after_annot.of(DigestStage::kIpet));
  prog.mutable_block(annot).loop_bound_annotation -= 1;

  const BlockStageDigests before_pp = ComputeBlockDigests(prog, preempt);
  prog.mutable_block(preempt).is_preemption_point = false;
  const BlockStageDigests after_pp = ComputeBlockDigests(prog, preempt);
  // A preemption toggle moves exactly the ILP-extras stage.
  EXPECT_EQ(before_pp.of(DigestStage::kStructure), after_pp.of(DigestStage::kStructure));
  EXPECT_EQ(before_pp.of(DigestStage::kLoops), after_pp.of(DigestStage::kLoops));
  EXPECT_EQ(before_pp.of(DigestStage::kCost), after_pp.of(DigestStage::kCost));
  EXPECT_NE(before_pp.of(DigestStage::kIpet), after_pp.of(DigestStage::kIpet));
  prog.mutable_block(preempt).is_preemption_point = true;
}

TEST(BlockDigests, RefreshReportsChange) {
  const auto image = BuildKernelImage(KernelConfig::After());
  Program& prog = image->prog;
  ProgramDigests digests(prog);

  BlockId annot = kNoBlock;
  for (BlockId id = 0; id < prog.num_blocks() && annot == kNoBlock; ++id) {
    if (prog.block(id).loop_bound_annotation > 0) {
      annot = id;
    }
  }
  ASSERT_NE(annot, kNoBlock);

  EXPECT_FALSE(digests.Refresh(annot));  // nothing edited
  prog.mutable_block(annot).loop_bound_annotation += 1;
  EXPECT_TRUE(digests.Refresh(annot));
  EXPECT_FALSE(digests.Refresh(annot));  // digest already refreshed
}

// ------------------------------------------------------- incremental engine

TEST(IncrementalWcet, MatchesColdAnalyzerOnFreshImage) {
  const auto image = BuildKernelImage(KernelConfig::After());
  const AnalysisOptions opts;
  IncrementalWcetAnalyzer inc(*image, opts);
  const WcetAnalyzer cold(*image, opts);
  for (EntryPoint e : kAllEntries) {
    ExpectResultsIdentical(inc.Analyze(e), cold.Analyze(e));
  }
  EXPECT_EQ(inc.InterruptResponseBound(), cold.InterruptResponseBound());
  EXPECT_EQ(inc.PerBlockBounds(), cold.PerBlockBounds());
}

TEST(IncrementalWcet, RepeatQueriesArePureHits) {
  const auto image = BuildKernelImage(KernelConfig::After());
  IncrementalWcetAnalyzer inc(*image, AnalysisOptions{});
  const Cycles first = inc.InterruptResponseBound();
  for (EntryPoint e : kAllEntries) {
    EXPECT_TRUE(inc.Fresh(e));
  }
  EXPECT_EQ(inc.InterruptResponseBound(), first);
}

class RandomEditScriptTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomEditScriptTest, IncrementalIdenticalToColdAfterEveryEdit) {
  // Both kernel configurations, alternating by seed; 24 cumulative edits per
  // script, cold-checked after every one.
  const KernelConfig kc =
      (GetParam() % 2 == 0) ? KernelConfig::After() : KernelConfig::Before();
  const auto image = BuildKernelImage(kc);
  Program& prog = image->prog;
  AnalysisOptions opts;
  IncrementalWcetAnalyzer inc(*image, opts);
  inc.InterruptResponseBound();  // prime the caches

  std::mt19937 rng(GetParam() * 7919 + 17);
  for (int step = 0; step < 24; ++step) {
    const Edit e = RandomEdit(prog, rng);
    ApplyEdit(prog, e);
    inc.NotifyBlockEdited(e.block);
    const WcetAnalyzer cold(*image, opts);
    for (EntryPoint entry : kAllEntries) {
      ExpectResultsIdentical(inc.Analyze(entry), cold.Analyze(entry));
    }
    EXPECT_EQ(inc.InterruptResponseBound(), cold.InterruptResponseBound());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEditScriptTest, ::testing::Values(0u, 1u, 2u, 3u));

TEST(IncrementalWcet, WarmStartsAfterMetadataEdits) {
  const auto image = BuildKernelImage(KernelConfig::After());
  Program& prog = image->prog;
  IncrementalWcetAnalyzer inc(*image, AnalysisOptions{});
  inc.InterruptResponseBound();

  const std::uint64_t warm_before =
      obs::MetricsRegistry::Get().Snapshot().CounterValue("wcet.inc.simplex.warm");
  std::mt19937 rng(42);
  for (int step = 0; step < 8; ++step) {
    const Edit e = RandomEdit(prog, rng);
    ApplyEdit(prog, e);
    inc.NotifyBlockEdited(e.block);
    inc.InterruptResponseBound();
  }
  const std::uint64_t warm_after =
      obs::MetricsRegistry::Get().Snapshot().CounterValue("wcet.inc.simplex.warm");
  // Metadata-only edits keep a valid stored basis, so at least some of the
  // re-solves must have started warm.
  EXPECT_GT(warm_after, warm_before);
}

// ------------------------------------------------------------- service core

std::vector<std::uint8_t> AnalyzeRequest(EntryPoint e) {
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(ServeOp::kAnalyze));
  w.U8(static_cast<std::uint8_t>(e));
  return w.Take();
}

std::vector<std::uint8_t> ResponseBoundRequest() {
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(ServeOp::kResponseBound));
  return w.Take();
}

std::vector<std::uint8_t> EditRequest(BlockId block, EditField field, std::uint64_t value) {
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(ServeOp::kEdit));
  w.U32(block);
  w.U8(static_cast<std::uint8_t>(field));
  w.U64(value);
  return w.Take();
}

Cycles ParseBound(const std::vector<std::uint8_t>& reply) {
  WireReader r(reply);
  EXPECT_EQ(r.U8(), 0);
  return r.U64();
}

TEST(WcetService, AnswersMatchDirectAnalyzer) {
  const AnalysisOptions opts;
  WcetService service(BuildKernelImage(KernelConfig::After()), opts);
  const auto image = BuildKernelImage(KernelConfig::After());
  const WcetAnalyzer direct(*image, opts);

  for (EntryPoint e : kAllEntries) {
    const auto reply = WcetService::ParseAnalyzeReply(service.Handle(AnalyzeRequest(e)));
    const EntryResult want = direct.Analyze(e);
    EXPECT_EQ(reply.status, static_cast<std::uint8_t>(want.status));
    EXPECT_EQ(reply.wcet, want.wcet);
    EXPECT_EQ(reply.micros, want.micros);
    EXPECT_EQ(reply.nodes, want.nodes);
    EXPECT_EQ(reply.edges, want.edges);
    EXPECT_EQ(reply.trace_blocks, want.worst_trace.blocks.size());
  }
  EXPECT_EQ(ParseBound(service.Handle(ResponseBoundRequest())), direct.InterruptResponseBound());
}

TEST(WcetService, EditInvalidatesAndReanswers) {
  const AnalysisOptions opts;
  WcetService service(BuildKernelImage(KernelConfig::After()), opts);
  const Cycles baseline = ParseBound(service.Handle(ResponseBoundRequest()));

  // Mirror image carries the cold reference for the edited state.
  const auto mirror = BuildKernelImage(KernelConfig::After());
  Program& prog = mirror->prog;
  BlockId annot = kNoBlock;
  for (BlockId id = 0; id < prog.num_blocks() && annot == kNoBlock; ++id) {
    if (prog.block(id).loop_bound_annotation > 0) {
      annot = id;
    }
  }
  ASSERT_NE(annot, kNoBlock);
  const std::uint32_t orig = prog.block(annot).loop_bound_annotation;

  service.Handle(EditRequest(annot, EditField::kLoopBoundAnnotation, orig + 3));
  prog.mutable_block(annot).loop_bound_annotation = orig + 3;
  EXPECT_EQ(ParseBound(service.Handle(ResponseBoundRequest())),
            WcetAnalyzer(*mirror, opts).InterruptResponseBound());

  service.Handle(EditRequest(annot, EditField::kLoopBoundAnnotation, orig));
  EXPECT_EQ(ParseBound(service.Handle(ResponseBoundRequest())), baseline);
}

TEST(WcetService, MalformedRequestsAnswerErrorsNotCrashes) {
  WcetService service(BuildKernelImage(KernelConfig::After()), AnalysisOptions{});
  const std::vector<std::vector<std::uint8_t>> bad = {
      {},                      // empty
      {99},                    // unknown op
      {1},                     // analyze without entry byte
      {1, 200},                // analyze with bogus entry
      {4, 1, 2, 3},            // truncated edit
      {1, 0, 0xFF},            // trailing garbage
  };
  for (const auto& request : bad) {
    const auto reply = service.Handle(request);
    WireReader r(reply);
    EXPECT_EQ(r.U8(), 1) << "request should have been rejected";
    EXPECT_FALSE(r.Str().empty());
  }
  // Out-of-range block id in a well-formed edit.
  const auto reply = service.Handle(EditRequest(0xFFFFFF, EditField::kLoopBoundAnnotation, 1));
  WireReader r(reply);
  EXPECT_EQ(r.U8(), 1);

  // The service still answers normal queries afterwards.
  const auto ok = WcetService::ParseAnalyzeReply(service.Handle(AnalyzeRequest(EntryPoint::kSyscall)));
  EXPECT_EQ(ok.status, static_cast<std::uint8_t>(SolveStatus::kOptimal));
}

TEST(WcetService, PingEchoesAndShutdownLatches) {
  WcetService service(BuildKernelImage(KernelConfig::After()), AnalysisOptions{});
  WireWriter ping;
  ping.U8(static_cast<std::uint8_t>(ServeOp::kPing));
  ping.U64(0xDEADBEEFCAFEF00DULL);
  const auto reply = service.Handle(ping.Take());
  WireReader r(reply);
  EXPECT_EQ(r.U8(), 0);
  EXPECT_EQ(r.U64(), 0xDEADBEEFCAFEF00DULL);

  EXPECT_FALSE(service.shutdown_requested());
  WireWriter down;
  down.U8(static_cast<std::uint8_t>(ServeOp::kShutdown));
  service.Handle(down.Take());
  EXPECT_TRUE(service.shutdown_requested());
}

// The TSan workload: concurrent queries against concurrent edit
// notifications must be race-free and every answer must equal one of the
// values the edit sequence can produce; after the writers drain, the answer
// must equal the cold bound of the final state.
TEST(WcetService, ConcurrentQueriesAndEditsAreRaceFree) {
  const AnalysisOptions opts;
  auto image = BuildKernelImage(KernelConfig::After());
  BlockId annot = kNoBlock;
  for (BlockId id = 0; id < image->prog.num_blocks() && annot == kNoBlock; ++id) {
    if (image->prog.block(id).loop_bound_annotation > 0) {
      annot = id;
    }
  }
  ASSERT_NE(annot, kNoBlock);
  const std::uint32_t orig = image->prog.block(annot).loop_bound_annotation;
  WcetService service(std::move(image), opts);

  constexpr int kQueryThreads = 6;
  constexpr int kQueriesPerThread = 40;
  constexpr int kEdits = 30;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&service, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const EntryPoint e = kAllEntries[(t + q) % 4];
        const auto reply = service.Handle(AnalyzeRequest(e));
        WireReader r(reply);
        ASSERT_EQ(r.U8(), 0);
        service.Handle(ResponseBoundRequest());
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < kEdits; ++i) {
      // Bounce the annotation between orig and orig+2: every edit moves the
      // loop-stage digest and forces invalidation + warm re-solves under the
      // readers' feet.
      const std::uint32_t v = (i % 2 == 0) ? orig + 2 : orig;
      const auto reply = service.Handle(EditRequest(annot, EditField::kLoopBoundAnnotation, v));
      WireReader r(reply);
      ASSERT_EQ(r.U8(), 0);
    }
    stop.store(true);
  });
  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();
  EXPECT_TRUE(stop.load());

  // Final state: kEdits is even, so the annotation is back at orig — the
  // settled answer must equal the cold bound of the pristine image.
  const auto mirror = BuildKernelImage(KernelConfig::After());
  EXPECT_EQ(ParseBound(service.Handle(ResponseBoundRequest())),
            WcetAnalyzer(*mirror, opts).InterruptResponseBound());
}

}  // namespace
}  // namespace pmk
