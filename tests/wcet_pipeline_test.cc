// Tests for the WCET pipeline stages: virtual inlining (CFG), automatic loop
// bounds (Section 5.3), the conservative cost model (Section 5.1) and IPET
// (Section 5.2) — on the real kernel images.

#include <gtest/gtest.h>

#include <map>

#include "src/kernel/objects.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

std::uint32_t LoopBoundFor(const InlinedGraph& g, BlockId head_block) {
  for (const InlinedLoop& l : g.loops()) {
    if (g.nodes()[l.head].block == head_block) {
      return l.bound;
    }
  }
  return 0;
}

TEST(InlineTest, CalleesAreClonedPerCallSite) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  // decode_cap is called from several contexts (handlers, transfer, mint);
  // count its entry-block clones.
  std::size_t decode_clones = 0;
  for (const InlinedNode& n : g.nodes()) {
    if (n.block == img->b.dec.entry) {
      decode_clones++;
    }
  }
  EXPECT_GE(decode_clones, 5u);
}

TEST(InlineTest, EveryNodeHasFlowPathConsistency) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  // Non-entry nodes have in-edges; non-return/path-end nodes have out-edges.
  for (const InlinedNode& n : g.nodes()) {
    if (n.id != g.entry_node()) {
      EXPECT_FALSE(n.in.empty()) << g.BlockOf(n.id).name;
    }
  }
  // Quasi-topological order covers all nodes (reducibility).
  EXPECT_EQ(g.QuasiTopoOrder().size(), g.nodes().size());
}

TEST(InlineTest, SinkEdgesOnlyAtPathEnds) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  for (EdgeId eid : g.sink_edges()) {
    const InlinedEdge& e = g.edges()[eid];
    EXPECT_TRUE(g.BlockOf(e.from).is_path_end);
  }
  EXPECT_GE(g.sink_edges().size(), 2u);  // exit + preempted
}

TEST(LoopBoundTest, DecodeLoopBoundIs32) {
  // Figure 7 / Section 5.3: the cap-decode loop is bounded by the 32 address
  // bits, derived automatically from the register slice.
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.fault.fn);  // fault path has one decode
  const auto res = ComputeLoopBounds(g);
  EXPECT_EQ(LoopBoundFor(g, img->b.dec.loop), 32u);
  bool found_auto = false;
  for (const auto& r : res) {
    if (r.source == LoopBoundResult::Source::kComputed) {
      found_auto = true;
    }
  }
  EXPECT_TRUE(found_auto);
}

TEST(LoopBoundTest, MessageLoopBoundedByMaxWords) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  EXPECT_EQ(LoopBoundFor(g, img->b.xfer.loop), KernelConfig::kMaxMsgWords);
}

TEST(LoopBoundTest, CapTransferLoopBoundedByMaxExtraCaps) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  EXPECT_EQ(LoopBoundFor(g, img->b.xfer.cap_one), KernelConfig::kMaxExtraCaps);
}

TEST(LoopBoundTest, SchedulerScanBoundedByPriorities) {
  KernelConfig kc = KernelConfig::After();
  kc.scheduler_bitmap = false;
  const auto img = BuildKernelImage(kc);
  InlinedGraph g(img->prog, img->b.irq.fn);
  ComputeLoopBounds(g);
  EXPECT_EQ(LoopBoundFor(g, img->b.choose.bn_loop), KernelConfig::kNumPriorities);
}

TEST(LoopBoundTest, AsidScanBoundedByPoolSize) {
  KernelConfig kc = KernelConfig::Before();
  const auto img = BuildKernelImage(kc);
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  EXPECT_EQ(LoopBoundFor(g, img->b.asid_alloc.loop), AsidPoolObj::kEntries);
  EXPECT_EQ(LoopBoundFor(g, img->b.pool_del.loop), AsidPoolObj::kEntries);
}

TEST(LoopBoundTest, RetypeClearLoopBoundedByChunks) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  const std::uint32_t max_chunks =
      (1u << KernelConfig::After().max_object_bits) / KernelConfig::After().clear_chunk_bytes;
  // The `more` head executes chunks+1 times per entry.
  EXPECT_EQ(LoopBoundFor(g, img->b.retype.more), max_chunks + 1);
}

TEST(CostModelTest, MustAnalysisMakesRepeatsCheap) {
  // Two consecutive straight-line nodes in one cache line: the second fetch
  // is a guaranteed hit — spot-check on the real image (sys.save is large).
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.irq.fn);
  ComputeLoopBounds(g);
  CostModelOptions opts;
  const CostResult costs = ComputeNodeCosts(g, opts);
  // Every reachable node has nonzero cost; entry has cold-cache misses.
  Cycles entry_cost = 0;
  for (const InlinedNode& n : g.nodes()) {
    if (n.id == g.entry_node()) {
      entry_cost = costs.node_costs[n.id];
    }
  }
  const Block& save = img->prog.block(img->b.irq.save);
  EXPECT_GT(entry_cost, save.instr_count);  // includes miss penalties
}

TEST(CostModelTest, L2RaisesMissPenalty) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.irq.fn);
  ComputeLoopBounds(g);
  CostModelOptions off;
  CostModelOptions on;
  on.l2_enabled = true;
  const CostResult c_off = ComputeNodeCosts(g, off);
  const CostResult c_on = ComputeNodeCosts(g, on);
  Cycles total_off = 0;
  Cycles total_on = 0;
  for (std::size_t i = 0; i < c_off.node_costs.size(); ++i) {
    total_off += c_off.node_costs[i];
    total_on += c_on.node_costs[i];
  }
  EXPECT_GT(total_on, total_off);
}

TEST(CostModelTest, PinnedLinesCostNothing) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.irq.fn);
  ComputeLoopBounds(g);
  CostModelOptions opts;
  const CostResult base = ComputeNodeCosts(g, opts);
  const PinnedLines pins = SelectPinnedLines(*img, opts.line_bytes, 128);
  opts.pinned_ilines.insert(pins.ilines.begin(), pins.ilines.end());
  opts.pinned_dlines.insert(pins.dlines.begin(), pins.dlines.end());
  const CostResult pinned = ComputeNodeCosts(g, opts);
  Cycles tb = 0;
  Cycles tp = 0;
  for (std::size_t i = 0; i < base.node_costs.size(); ++i) {
    tb += base.node_costs[i];
    tp += pinned.node_costs[i];
  }
  EXPECT_LT(tp, tb);
}

TEST(IpetTest, WorstTraceIsConsistentWithWcet) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.irq.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  const IpetResult r = RunIpet(g, costs, iopts, {});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const Trace trace = ExtractWorstTrace(g, r);
  ASSERT_FALSE(trace.blocks.empty());
  EXPECT_EQ(trace.blocks.front(), img->b.irq.save);
  // Evaluating the extracted worst path under the same model cannot exceed
  // the ILP bound (it replays one feasible flow).
  EXPECT_LE(EvaluateTraceCost(img->prog, trace, copts), r.wcet);
}

TEST(IpetTest, LatencyModeCutsPreemptibleLoops) {
  // With an interrupt pending (latency mode), a preemptible loop contributes
  // at most one chunk; in functional mode it contributes all of them.
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions latency;
  latency.irq_pending = true;
  IpetOptions functional;
  functional.irq_pending = false;
  const IpetResult lr = RunIpet(g, costs, latency, {});
  const IpetResult fr = RunIpet(g, costs, functional, {});
  ASSERT_EQ(lr.status, SolveStatus::kOptimal);
  ASSERT_EQ(fr.status, SolveStatus::kOptimal);
  EXPECT_LT(lr.wcet * 10, fr.wcet)
      << "functional-mode WCET should dwarf the latency bound (full clears)";
}

TEST(IpetTest, ManualConsistentConstraintTightensBound) {
  // The paper's "a is consistent with b in f" workflow (Sections 5.2, 6):
  // force the fastpath-eligibility check to agree with the fastpath bailing,
  // i.e. forbid paths that both run the fastpath AND the full slowpath.
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  const IpetResult base = RunIpet(g, costs, iopts, {});
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  std::vector<ManualConstraint> cons;
  ManualConstraint mc;
  mc.kind = ManualConstraint::Kind::kConflict;
  mc.a = img->b.fast.do_it;  // completing fastpath conflicts with
  mc.b = img->b.sys.do_call;  // ... dispatching the slow Call
  cons.push_back(mc);
  const IpetResult tightened = RunIpet(g, costs, iopts, cons);
  ASSERT_EQ(tightened.status, SolveStatus::kOptimal);
  EXPECT_LE(tightened.wcet, base.wcet);
}

TEST(IpetTest, ExecutesNConstraintCapsBlock) {
  const auto img = BuildKernelImage(KernelConfig::After());
  InlinedGraph g(img->prog, img->b.sys.fn);
  ComputeLoopBounds(g);
  CostModelOptions copts;
  const CostResult costs = ComputeNodeCosts(g, copts);
  IpetOptions iopts;
  std::vector<ManualConstraint> cons;
  ManualConstraint mc;
  mc.kind = ManualConstraint::Kind::kExecutes;
  mc.a = img->b.dec.loop;
  mc.n = 8;  // pretend cspaces are at most 8 levels deep
  cons.push_back(mc);
  const IpetResult base = RunIpet(g, costs, iopts, {});
  const IpetResult capped = RunIpet(g, costs, iopts, cons);
  ASSERT_EQ(capped.status, SolveStatus::kOptimal);
  EXPECT_LT(capped.wcet, base.wcet);
}

TEST(AnalyzerTest, AllFourEntryPointsSolve) {
  for (const bool after : {false, true}) {
    const auto img =
        BuildKernelImage(after ? KernelConfig::After() : KernelConfig::Before());
    WcetAnalyzer an(*img, AnalysisOptions{});
    for (const auto e : {EntryPoint::kSyscall, EntryPoint::kUndefined,
                         EntryPoint::kPageFault, EntryPoint::kInterrupt}) {
      const EntryResult r = an.Analyze(e);
      EXPECT_EQ(r.status, SolveStatus::kOptimal) << EntryPointName(e);
      EXPECT_GT(r.wcet, 0u);
    }
  }
}

TEST(AnalyzerTest, BeforeKernelOrdersOfMagnitudeWorse) {
  const auto before = BuildKernelImage(KernelConfig::Before());
  const auto after = BuildKernelImage(KernelConfig::After());
  WcetAnalyzer ab(*before, AnalysisOptions{});
  WcetAnalyzer aa(*after, AnalysisOptions{});
  const Cycles wb = ab.Analyze(EntryPoint::kSyscall).wcet;
  const Cycles wa = aa.Analyze(EntryPoint::kSyscall).wcet;
  EXPECT_GT(wb, wa * 8) << "the paper reports a factor ~11.6 improvement";
  EXPECT_GT(ab.Analyze(EntryPoint::kInterrupt).wcet, aa.Analyze(EntryPoint::kInterrupt).wcet);
}

TEST(AnalyzerTest, PinningImprovesInterruptPathMost) {
  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions plain;
  AnalysisOptions pinned;
  pinned.cache_pinning = true;
  WcetAnalyzer ap(*img, plain);
  WcetAnalyzer aq(*img, pinned);
  double best_gain = 0;
  EntryPoint best = EntryPoint::kSyscall;
  for (const auto e : {EntryPoint::kSyscall, EntryPoint::kUndefined,
                       EntryPoint::kPageFault, EntryPoint::kInterrupt}) {
    const Cycles w0 = ap.Analyze(e).wcet;
    const Cycles w1 = aq.Analyze(e).wcet;
    EXPECT_LE(w1, w0) << EntryPointName(e);
    const double gain = 1.0 - static_cast<double>(w1) / static_cast<double>(w0);
    if (gain > best_gain) {
      best_gain = gain;
      best = e;
    }
  }
  EXPECT_EQ(best, EntryPoint::kInterrupt);  // Table 1's 46% row
  EXPECT_GT(best_gain, 0.3);
}

TEST(AnalyzerTest, L2RaisesComputedBounds) {
  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions off;
  AnalysisOptions on;
  on.l2_enabled = true;
  WcetAnalyzer a0(*img, off);
  WcetAnalyzer a1(*img, on);
  for (const auto e : {EntryPoint::kSyscall, EntryPoint::kInterrupt}) {
    EXPECT_GT(a1.Analyze(e).wcet, a0.Analyze(e).wcet) << EntryPointName(e);
  }
}

TEST(AnalyzerTest, InterruptResponseBoundIsSumOfWorstPaths) {
  const auto img = BuildKernelImage(KernelConfig::After());
  WcetAnalyzer an(*img, AnalysisOptions{});
  const Cycles bound = an.InterruptResponseBound();
  const Cycles sys = an.Analyze(EntryPoint::kSyscall).wcet;
  const Cycles irq = an.Analyze(EntryPoint::kInterrupt).wcet;
  EXPECT_EQ(bound, sys + irq);
}

TEST(AnalyzerTest, MostLoopsBoundedAutomatically) {
  // Section 5.3: the majority of loop bounds come from the automatic
  // slice-and-search analysis, not annotations.
  const auto img = BuildKernelImage(KernelConfig::After());
  WcetAnalyzer an(*img, AnalysisOptions{});
  const EntryResult r = an.Analyze(EntryPoint::kSyscall);
  EXPECT_GT(r.loops_bounded_auto, 10u);
  EXPECT_LE(r.loops_bounded_annot, 2u);
}

}  // namespace
}  // namespace pmk
