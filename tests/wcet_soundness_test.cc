// Soundness property tests: every observed execution on the full machine
// model must be bounded by the conservative analysis — for random workloads,
// both kernels, both L2 settings, and with cache pinning. This is the
// "Computed results are a safe upper bound" claim of Table 2.

#include <gtest/gtest.h>

#include <random>

#include "src/sim/latency.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

struct Variant {
  bool after;
  bool l2;
  bool pin;
};

class SoundnessTest : public ::testing::TestWithParam<Variant> {};

std::string VariantName(const ::testing::TestParamInfo<Variant>& info) {
  std::string s = info.param.after ? "After" : "Before";
  s += info.param.l2 ? "L2on" : "L2off";
  s += info.param.pin ? "Pinned" : "";
  return s;
}

TEST_P(SoundnessTest, ObservedNeverExceedsComputed) {
  const Variant v = GetParam();
  const KernelConfig kc = v.after ? KernelConfig::After() : KernelConfig::Before();
  MachineConfig mc = EvalMachine(v.l2);

  AnalysisOptions ao;
  ao.l2_enabled = v.l2;
  ao.cache_pinning = v.pin;

  System sys(kc, mc);
  if (v.pin) {
    sys.kernel().ApplyCachePinning();
  }
  WcetAnalyzer analyzer(sys.kernel().image(), ao);
  const Cycles sys_wcet = analyzer.Analyze(EntryPoint::kSyscall).wcet;
  const Cycles irq_wcet = analyzer.Analyze(EntryPoint::kInterrupt).wcet;
  const Cycles fault_wcet = analyzer.Analyze(EntryPoint::kPageFault).wcet;

  // Scenario 1: the worst-case IPC (Section 6.1).
  {
    auto w = sys.BuildWorstCaseIpc();
    sys.machine().PolluteCaches();
    const Cycles t0 = sys.machine().Now();
    ASSERT_EQ(sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args), KernelExit::kDone);
    const Cycles obs = sys.machine().Now() - t0;
    EXPECT_LE(obs, sys_wcet) << "worst-case IPC";
  }

  // Scenario 2: interrupt delivery into a bound endpoint.
  {
    EndpointObj* ep = nullptr;
    sys.AddEndpoint(&ep);
    TcbObj* h = sys.AddThread(200);
    sys.kernel().DirectBlockOnRecv(h, ep);
    sys.kernel().DirectBindIrq(1, ep);
    sys.machine().PolluteCaches();
    sys.machine().irq().Assert(1, sys.machine().Now());
    const Cycles t0 = sys.machine().Now();
    sys.kernel().HandleIrqEntry();
    EXPECT_LE(sys.machine().Now() - t0, irq_wcet) << "interrupt delivery";
  }

  // Scenario 3: page fault to a deep-cspace handler endpoint.
  {
    EndpointObj* ep = nullptr;
    sys.AddEndpoint(&ep);
    TcbObj* pager = sys.AddThread(150);
    sys.kernel().DirectBlockOnRecv(pager, ep);
    TcbObj* task = sys.AddThread(10);
    Cap ep_cap;
    ep_cap.type = ObjType::kEndpoint;
    ep_cap.obj = ep->base;
    task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
    // Decoding the fault handler happens in the faulter's own (deep) cspace.
    sys.kernel().DirectSetCurrent(task);
    sys.machine().PolluteCaches();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().RaisePageFault();
    EXPECT_LE(sys.machine().Now() - t0, fault_wcet) << "page fault";
  }

  // Scenario 4: randomized syscall storm — every entry bounded.
  {
    System storm(kc, mc);
    if (v.pin) {
      storm.kernel().ApplyCachePinning();
    }
    EndpointObj* ep = nullptr;
    const std::uint32_t ep_cptr = storm.AddEndpoint(&ep);
    const std::uint32_t ut_cptr = storm.AddUntyped(20);
    std::vector<TcbObj*> threads;
    for (int i = 0; i < 6; ++i) {
      TcbObj* t = storm.AddThread(static_cast<std::uint8_t>(10 + i * 17));
      storm.kernel().DirectResume(t);
      threads.push_back(t);
    }
    storm.kernel().DirectSetCurrent(threads[0]);
    std::mt19937 rng(987 + (v.after ? 1 : 0) + (v.l2 ? 2 : 0));
    std::uint32_t dest = 60;
    for (int step = 0; step < 120; ++step) {
      SyscallArgs args;
      storm.machine().PolluteCaches();
      const Cycles t0 = storm.machine().Now();
      switch (rng() % 4) {
        case 0:
          args.msg_len = rng() % 9;
          storm.kernel().Syscall(SysOp::kSend, ep_cptr, args);
          break;
        case 1:
          storm.kernel().Syscall(SysOp::kRecv, ep_cptr, args);
          break;
        case 2:
          storm.kernel().Syscall(SysOp::kYield, 0, args);
          break;
        case 3:
          args.label = InvLabel::kUntypedRetype;
          args.obj_type = ObjType::kEndpoint;
          args.dest_index = dest++;
          storm.kernel().Syscall(SysOp::kCall, ut_cptr, args);
          break;
      }
      const Cycles obs = storm.machine().Now() - t0;
      ASSERT_LE(obs, sys_wcet) << "storm step " << step;
      if (storm.kernel().current() == storm.kernel().idle()) {
        for (TcbObj* t : threads) {
          if (t->blocked_on == 0 && t->state == ThreadState::kRunning) {
            storm.kernel().DirectSetCurrent(t);
            break;
          }
        }
        if (storm.kernel().current() == storm.kernel().idle()) {
          break;  // everything blocked; scenario exhausted
        }
      }
      if (dest > 250) {
        dest = 60;
        break;  // root CNode nearly full
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SoundnessTest,
                         ::testing::Values(Variant{true, false, false},
                                           Variant{true, true, false},
                                           Variant{true, false, true},
                                           Variant{false, false, false},
                                           Variant{false, true, false}),
                         VariantName);

TEST(ForcedPathTest, TraceEvaluationBoundsObservedRun) {
  // Section 6.2: force the analysis onto the measured path; the computed
  // path cost must bound the hardware-model observation.
  for (const bool l2 : {false, true}) {
    System sys(KernelConfig::After(), EvalMachine(l2));
    auto w = sys.BuildWorstCaseIpc();
    sys.machine().PolluteCaches();
    sys.kernel().exec().StartRecording();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
    const Cycles observed = sys.machine().Now() - t0;
    const Trace trace = sys.kernel().exec().StopRecording();

    AnalysisOptions ao;
    ao.l2_enabled = l2;
    WcetAnalyzer an(sys.kernel().image(), ao);
    const Cycles forced = an.EvaluateTrace(trace);
    const Cycles wcet = an.Analyze(EntryPoint::kSyscall).wcet;
    EXPECT_LE(observed, forced) << "conservative path model must bound the run";
    EXPECT_LE(forced, wcet) << "the WCET bounds every path";
  }
}

TEST(ForcedPathTest, OverestimationGrowsWithL2) {
  // Table 2 / Figure 8: enabling the L2 increases the model's pessimism.
  double ratio[2] = {0, 0};
  for (const bool l2 : {false, true}) {
    System sys(KernelConfig::After(), EvalMachine(l2));
    auto w = sys.BuildWorstCaseIpc();
    sys.machine().PolluteCaches();
    sys.kernel().exec().StartRecording();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
    const Cycles observed = sys.machine().Now() - t0;
    const Trace trace = sys.kernel().exec().StopRecording();
    AnalysisOptions ao;
    ao.l2_enabled = l2;
    WcetAnalyzer an(sys.kernel().image(), ao);
    ratio[l2 ? 1 : 0] =
        static_cast<double>(an.EvaluateTrace(trace)) / static_cast<double>(observed);
  }
  EXPECT_GT(ratio[0], 1.0);
  EXPECT_GT(ratio[1], ratio[0]);
}

TEST(LatencyBoundTest, PreemptibleOpsMeetTheResponseBound) {
  // End to end: a long preemptible operation under a periodic timer never
  // exceeds the computed interrupt response bound.
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  sys.QueueSenders(ep, 64, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);

  WcetAnalyzer an(sys.kernel().image(), AnalysisOptions{});
  const Cycles bound = an.InterruptResponseBound();

  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 3000);
  EXPECT_GT(res.preemptions, 0u);
  EXPECT_LE(res.max_irq_latency, bound);
}

}  // namespace
}  // namespace pmk
