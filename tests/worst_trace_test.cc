// Tests of the worst-case trace extraction: the ILP solution converted back
// to a concrete block sequence (paper Section 6's "converted the solution to
// a concrete execution trace"), and the structural feasibility checks one
// performs on it.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/wcet/analysis.h"

namespace pmk {
namespace {

EntryResult AnalyzeSyscall(const KernelImage& img) {
  WcetAnalyzer an(img, AnalysisOptions{});
  EntryResult r = an.Analyze(EntryPoint::kSyscall);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  return r;
}

TEST(WorstTraceTest, StartsAtEntryAndEndsAtAPathEnd) {
  const auto img = BuildKernelImage(KernelConfig::After());
  const EntryResult r = AnalyzeSyscall(*img);
  ASSERT_FALSE(r.worst_trace.blocks.empty());
  EXPECT_EQ(r.worst_trace.blocks.front(), img->b.sys.save);
  EXPECT_TRUE(img->prog.block(r.worst_trace.blocks.back()).is_path_end);
}

TEST(WorstTraceTest, RespectsDispatcherExclusivity) {
  // A feasible trace dispatches exactly one syscall operation.
  const auto img = BuildKernelImage(KernelConfig::After());
  const EntryResult r = AnalyzeSyscall(*img);
  std::size_t dispatched = 0;
  for (const BlockId b : r.worst_trace.blocks) {
    for (const BlockId d : {img->b.sys.do_call, img->b.sys.do_send, img->b.sys.do_recv,
                            img->b.sys.do_replyrecv, img->b.sys.do_yield}) {
      if (b == d) {
        dispatched++;
      }
    }
  }
  EXPECT_EQ(dispatched, 1u);
}

TEST(WorstTraceTest, ConsecutiveBlocksAreCfgNeighbours) {
  const auto img = BuildKernelImage(KernelConfig::After());
  const EntryResult r = AnalyzeSyscall(*img);
  const Program& p = img->prog;
  for (std::size_t i = 0; i + 1 < r.worst_trace.blocks.size(); ++i) {
    const Block& cur = p.block(r.worst_trace.blocks[i]);
    const BlockId next = r.worst_trace.blocks[i + 1];
    bool legal = false;
    for (const BlockId s : cur.succs) {
      legal |= s == next;
    }
    if (cur.callee != kNoFunc) {
      legal |= next == p.function(cur.callee).entry;
    }
    if (cur.is_return) {
      legal = true;  // return target depends on the (unrecorded) call stack
    }
    EXPECT_TRUE(legal) << cur.name << " -> " << p.block(next).name;
  }
}

TEST(WorstTraceTest, LatencyModeContainsNoPreemptionContinuation) {
  // With an interrupt pending, the worst path never passes a preemption
  // point's continue edge: a preemption-point block is followed by its
  // preempted exit (succs[1]), never by succs[0].
  const auto img = BuildKernelImage(KernelConfig::After());
  const EntryResult r = AnalyzeSyscall(*img);
  const Program& p = img->prog;
  for (std::size_t i = 0; i + 1 < r.worst_trace.blocks.size(); ++i) {
    const Block& cur = p.block(r.worst_trace.blocks[i]);
    if (cur.is_preemption_point) {
      EXPECT_EQ(r.worst_trace.blocks[i + 1], cur.succs[1]) << cur.name;
    }
  }
}

TEST(WorstTraceTest, WorstPathUsesTheDeepestDecode) {
  // The post-changes worst case is the IPC with worst-case cap decoding
  // (Section 6.1): the decode loop appears with its full 32-iteration count.
  const auto img = BuildKernelImage(KernelConfig::After());
  const EntryResult r = AnalyzeSyscall(*img);
  std::map<BlockId, std::size_t> counts;
  for (const BlockId b : r.worst_trace.blocks) {
    counts[b]++;
  }
  EXPECT_GE(counts[img->b.dec.loop], 32u);
  EXPECT_GE(counts[img->b.xfer.loop], KernelConfig::kMaxMsgWords);
}

TEST(WorstTraceTest, OversizedWorstPathIsElidedNotMaterialized) {
  // The atomic-shadow configuration's worst path has hundreds of millions of
  // block executions; extraction must decline rather than exhaust memory.
  KernelConfig kc = KernelConfig::After();
  kc.preemptible_clearing = false;
  kc.preemptible_deletion = false;
  kc.preemptible_badged_abort = false;
  const auto img = BuildKernelImage(kc);
  WcetAnalyzer an(*img, AnalysisOptions{});
  const EntryResult r = an.Analyze(EntryPoint::kSyscall);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_GT(r.wcet, 1'000'000'000u);
  EXPECT_TRUE(r.worst_trace.blocks.empty());
}

TEST(WorstTraceTest, BeforeKernelWorstPathIsTheObjectClear) {
  // The pre-changes worst case is dominated by the non-preemptible clear
  // (Table 2's 3851 us), not by IPC.
  const auto img = BuildKernelImage(KernelConfig::Before());
  const EntryResult r = AnalyzeSyscall(*img);
  std::map<BlockId, std::size_t> counts;
  for (const BlockId b : r.worst_trace.blocks) {
    counts[b]++;
  }
  const std::uint32_t max_chunks =
      (1u << KernelConfig::Before().max_object_bits) / KernelConfig::Before().clear_chunk_bytes;
  EXPECT_EQ(counts[img->b.retype.clear_chunk], max_chunks);
}

}  // namespace
}  // namespace pmk
